//! A *resident* worker pool for the relaxed priority schedulers, partitioned
//! into **gangs** that execute jobs concurrently.
//!
//! The one-shot executor (`smq_runtime::run`) spawns and joins a fresh
//! thread fleet for every invocation, so thread-spawn latency and cold
//! scheduler state dominate any short job.  A [`WorkerPool`] instead spawns
//! its fleet **once**, parks the workers on a condvar between jobs, and
//! executes a stream of jobs against long-lived schedulers: each job seeds a
//! scheduler, runs the shared worker loop
//! (`smq_runtime::executor::worker_loop`) to quiescence under a fresh
//! termination-detection *generation*, and hands back per-job
//! [`RunMetrics`].
//!
//! # Gangs: job-level parallelism
//!
//! The fleet is partitioned into `gangs` gangs of `gang_size` workers each
//! (see [`PoolConfig`]).  Every gang owns its **own scheduler instance, its
//! own [`TerminationDetector`], and its own job hand-off state**, so gangs
//! are fully independent: one gang's quiescence scan can only ever observe
//! its own workers' counters, and a job running on gang A shares nothing
//! with a job on gang B except the pool's lifetime counters.  Jobs claim
//! gangs through a FIFO allocator:
//!
//! * [`run_job`](WorkerPool::run_job) claims **every** live gang — the
//!   whole-fleet mode, and exactly the historical behaviour on a
//!   single-gang pool (`PoolConfig::new`);
//! * [`run_job_on`](WorkerPool::run_job_on) claims up to `n` gangs, so
//!   small jobs (tiny route queries whose quiescence phase would idle most
//!   of a big fleet) each occupy one gang and run **concurrently**.
//!
//! A job spanning multiple gangs splits its seed tasks round-robin across
//! all participating workers; follow-up tasks stay inside the gang that
//! created them.  The workload contract (correct under any execution order,
//! monotone shared state) makes that partitioned execution equivalent to a
//! whole-fleet run — only load balance, never the answer, depends on the
//! partitioning.
//!
//! Generations (see `smq_runtime::termination`) are what make detector
//! reuse sound: each gang's counters are zeroed between jobs while that
//! gang's workers are parked, scans that straddle a generation boundary
//! invalidate themselves, and a tally leaked across jobs asserts in debug
//! builds.
//!
//! # Panic containment and gang respawn
//!
//! A job whose `process` panics kills the worker it ran on, which strands
//! that worker's thread-local queues; the gang it happened on is therefore
//! **poisoned** and pulled from the allocator (its surviving workers bail
//! out via an abort flag instead of spinning on an unreachable quiescence).
//! The `run_job*` call that owned the gang returns
//! [`Err(JobError::Lost)`](JobError::Lost); *other* gangs — and their
//! in-flight jobs — are untouched, so a long-lived service survives a bad
//! job.  On pools built from a scheduler *factory*
//! ([`new_partitioned`](WorkerPool::new_partitioned) and friends) a
//! poisoned gang is then **respawned**: its surviving workers are joined,
//! the slot gets a fresh scheduler from the stored factory and fresh
//! threads, and the gang returns to the free list — so `live_gangs`
//! recovers to the configured gang count after any panic storm
//! ([`PoolStats::gangs_respawned`] counts the rebuilds).  Respawn runs
//! lazily at the next claim by default, or immediately when the claim that
//! observed the poison releases ([`RespawnPolicy::Eager`]);
//! [`RespawnPolicy::Never`] keeps the historical retire-forever behaviour.
//! Pools without a factory ([`WorkerPool::new`],
//! [`with_borrowed`](WorkerPool::with_borrowed)) cannot rebuild a
//! scheduler and always retire poisoned gangs; once every gang of such a
//! pool is dead, claims fail with [`JobError::NoCapacity`] instead of
//! panicking the caller.
//!
//! # Deadlines, budgets, cancellation
//!
//! A [`JobSpec`] attaches a wall-clock deadline and/or a per-job executed
//! task budget to a job ([`run_job_with`](WorkerPool::run_job_with), or the
//! service's `submit_with`).  Workers check the limits every few tasks;
//! when one trips, the job is **cancelled, not poisoned**: every worker of
//! the job flips into drain-and-discard mode (the shared worker loop
//! records completions for popped tasks without processing them and pushes
//! nothing), so the frontier collapses to ordinary quiescence, the
//! scheduler ends provably empty, and the gang is immediately reusable.
//! The call returns [`Err(JobError::DeadlineExceeded)`](JobError) (or
//! `BudgetExceeded`), and the partial work is discarded.
//!
//! On top of the pool, [`JobService`] adds a bounded multi-producer
//! submission queue with FIFO admission, a configurable number of
//! dispatcher threads (default: one per gang, so up to `gangs` jobs are in
//! flight), completion tickets carrying queue-wait and service-time
//! measurements, per-job timeouts with bounded retry/backoff, and graceful
//! drain-then-join shutdown.
//!
//! # Scheduler ownership
//!
//! Worker threads are OS threads, so the schedulers they share must outlive
//! them.  Three constructions guarantee that:
//!
//! * [`WorkerPool::new`] takes a single-gang scheduler **by value** and
//!   keeps it alive until the workers are joined;
//! * [`WorkerPool::new_partitioned`] builds one scheduler per gang from a
//!   factory closure and owns all of them the same way;
//! * [`WorkerPool::with_borrowed`] runs a closure against a single-gang
//!   pool built on a *borrowed* scheduler and joins every worker before
//!   returning — the scoped mode backing `smq_algos::engine::run_parallel`.
//!
//! All funnel into one erased representation (a raw pointer to a small
//! object-safe scheduler vtable); the join-before-invalidation discipline
//! is what makes the erasure sound, and it is enforced structurally (the
//! scoped constructor joins on every path, including unwinds, and the
//! owning constructors join in `Drop` before the boxes are released).

#![warn(missing_docs)]

#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod service;

#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use service::{
    JobCompletion, JobPolicy, JobService, JobTicket, RetryPolicy, ServiceConfig, ServiceStats,
    SubmitError,
};

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use smq_core::{OpStats, Scheduler, SchedulerHandle, Task};
use smq_runtime::executor::{worker_loop_instrumented, LoopControl, WorkerLoopConfig};
use smq_runtime::{RunMetrics, Scratch, TerminationDetector, Topology};
use smq_telemetry::{TelemetryConfig, TelemetryReport, WorkerReport, WorkerTelemetry};

/// Why a pool job produced no output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The job (or a pool worker executing it) panicked; the gang it ran on
    /// was poisoned.  The job may have had partial side effects.
    Lost,
    /// Every gang of the pool is dead and cannot be respawned (no scheduler
    /// factory), so nothing can serve the job.
    NoCapacity,
    /// The job tripped its [`JobSpec::deadline`] and was cooperatively
    /// cancelled; its gangs drained cleanly and remain usable.
    DeadlineExceeded,
    /// The job tripped its [`JobSpec::budget`] and was cooperatively
    /// cancelled; its gangs drained cleanly and remain usable.
    BudgetExceeded,
}

/// Backwards-compatible name for [`JobError::Lost`]: earlier releases
/// surfaced job loss as a dedicated `JobLost` unit type, and the variant
/// alias keeps both `Err(JobLost)` expressions and patterns compiling.
#[doc(hidden)]
pub use JobError::Lost as JobLost;

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Lost => {
                write!(f, "job was lost: it panicked while executing on the pool")
            }
            JobError::NoCapacity => {
                write!(f, "worker pool has no live gangs left to serve the job")
            }
            JobError::DeadlineExceeded => write!(f, "job exceeded its deadline and was cancelled"),
            JobError::BudgetExceeded => {
                write!(f, "job exceeded its task budget and was cancelled")
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Per-job execution limits, enforced cooperatively by the workers (a
/// cheap check every few tasks — see the module docs).  The default spec
/// imposes no limits and adds no per-task work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobSpec {
    /// Cancel the job once this instant passes.
    pub deadline: Option<Instant>,
    /// Cancel the job once its workers have *processed* (not merely
    /// popped) this many tasks in total, across every gang it claimed.
    pub budget: Option<u64>,
}

impl JobSpec {
    /// True when the spec imposes no limit (the zero-overhead fast path).
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.budget.is_none()
    }
}

/// When poisoned gangs of a factory-built pool are rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RespawnPolicy {
    /// Rebuild dead gangs at the next [`claim`](WorkerPool::run_job), off
    /// the job hot path (the default for factory-built pools).
    #[default]
    Lazy,
    /// Rebuild a poisoned gang as soon as the claim that observed the
    /// poison releases, so capacity returns before the next job asks.
    Eager,
    /// Never rebuild: a poisoned gang is retired forever (the historical
    /// behaviour, and the only option for pools without a factory).
    Never,
}

/// Pool tuning knobs.
///
/// The fleet is `gangs * gang_size` worker threads.  `PoolConfig::new(n)`
/// is the single-gang configuration (one scheduler, whole-fleet jobs —
/// the historical behaviour); [`PoolConfig::partitioned`] enables
/// job-level parallelism.
///
/// **Choosing a gang size:** a gang is the unit a job occupies, so
/// `gang_size` should match the parallelism one job can actually use.
/// Tiny jobs (point-to-point route queries touching a few hundred
/// vertices) saturate one or two workers and spend the rest of the fleet
/// idling through the quiescence phase — many small gangs serve them at
/// far higher jobs/sec.  Big jobs (whole-graph SSSP) want one gang as wide
/// as the machine.  A job larger than one gang may claim several via
/// [`WorkerPool::run_job_on`], or the whole fleet via
/// [`WorkerPool::run_job`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of independent worker gangs (each with its own scheduler
    /// instance and termination detector).
    pub gangs: usize,
    /// Worker threads per gang.  Must match each gang scheduler's
    /// configured thread count.
    pub gang_size: usize,
    /// The per-worker loop knobs (backoff, scan gating) — the same
    /// [`WorkerLoopConfig`] the one-shot executor uses, so defaults live in
    /// one place.
    pub worker: WorkerLoopConfig,
    /// Optional (simulated) NUMA topology covering the whole fleet.  When
    /// set, gang placement is socket-aligned: `gang_size` must divide
    /// `threads_per_node`, so no gang ever straddles a node boundary, and
    /// [`node_of_gang`](Self::node_of_gang) reports each gang's home node
    /// (which [`WorkerPool::new_aligned`] forwards to the scheduler
    /// factory).  `None` (the default) keeps placement topology-blind.
    pub topology: Option<Topology>,
    /// Opt-in instrumentation for every worker (phase accounting,
    /// rank-error probing, event rings).  Disabled by default: the
    /// uninstrumented hot path takes no timestamps and makes no extra
    /// scheduler calls.
    pub telemetry: TelemetryConfig,
    /// When poisoned gangs are rebuilt (see [`RespawnPolicy`]).  Ignored by
    /// pools without a scheduler factory, which can never rebuild.
    pub respawn: RespawnPolicy,
    /// Deterministic fault plan injected into every worker — chaos-testing
    /// only, see [`fault::FaultPlan`].
    #[cfg(feature = "fault-inject")]
    pub faults: Option<FaultPlan>,
}

impl PoolConfig {
    /// A single-gang configuration with `threads` workers and default
    /// backoff/gating: every job occupies the whole fleet, one at a time.
    pub fn new(threads: usize) -> Self {
        Self {
            gangs: 1,
            gang_size: threads,
            worker: WorkerLoopConfig::default(),
            topology: None,
            telemetry: TelemetryConfig::disabled(),
            respawn: RespawnPolicy::default(),
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// A configuration with `gangs` gangs of `gang_size` workers each, so
    /// up to `gangs` jobs execute concurrently.
    pub fn partitioned(gangs: usize, gang_size: usize) -> Self {
        Self {
            gangs,
            gang_size,
            worker: WorkerLoopConfig::default(),
            topology: None,
            telemetry: TelemetryConfig::disabled(),
            respawn: RespawnPolicy::default(),
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// A socket-aligned configuration covering every thread of `topology`:
    /// the requested `gang_size` is snapped *down* to the nearest divisor
    /// of `threads_per_node` so a gang can never straddle a node boundary,
    /// and the gang count is whatever tiles the fleet at that size.
    ///
    /// A hint of `threads_per_node` (or any multiple of it) yields
    /// one-gang-per-node placement, the layout the paper's NUMA tables
    /// assume.
    pub fn numa_aligned(topology: Topology, gang_size_hint: usize) -> Self {
        let per_node = topology.threads_per_node();
        let hint = gang_size_hint.clamp(1, per_node);
        let gang_size = (1..=hint)
            .rev()
            .find(|size| per_node.is_multiple_of(*size))
            .expect("1 always divides threads_per_node");
        let gangs = topology.num_threads() / gang_size;
        Self {
            gangs,
            gang_size,
            worker: WorkerLoopConfig::default(),
            topology: Some(topology),
            telemetry: TelemetryConfig::disabled(),
            respawn: RespawnPolicy::default(),
            #[cfg(feature = "fault-inject")]
            faults: None,
        }
    }

    /// Attaches a NUMA topology to an existing configuration, asserting the
    /// socket-alignment invariants (`topology` covers the exact fleet and
    /// `gang_size` divides `threads_per_node`).  Use
    /// [`numa_aligned`](Self::numa_aligned) to have the gang size snapped
    /// automatically instead.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert_eq!(
            topology.num_threads(),
            self.total_threads(),
            "topology must cover the pool's whole fleet"
        );
        assert_eq!(
            topology.threads_per_node() % self.gang_size,
            0,
            "gang size {} must divide threads_per_node {} so gangs never straddle a node",
            self.gang_size,
            topology.threads_per_node()
        );
        self.topology = Some(topology);
        self
    }

    /// The NUMA node gang `gang` is placed on: gangs tile nodes in order,
    /// `threads_per_node / gang_size` gangs per node.  Node 0 when no
    /// topology is configured (single-node placement).
    pub fn node_of_gang(&self, gang: usize) -> usize {
        debug_assert!(gang < self.gangs);
        match &self.topology {
            Some(topology) => (gang * self.gang_size) / topology.threads_per_node(),
            None => 0,
        }
    }

    /// Sets the hot-path batch granularity for every worker (see
    /// `smq_runtime::executor::WorkerLoopConfig::batch_size`).  Batch 1
    /// (the default) is the exact historical per-task path; larger batches
    /// amortize scheduler synchronization and — on erased pools — virtual
    /// dispatch over the batch.
    pub fn with_batch(mut self, batch_size: usize) -> Self {
        self.worker.batch_size = batch_size.max(1);
        self
    }

    /// Enables the given instrumentation for every worker of the pool (see
    /// [`TelemetryConfig`]).  Job outputs then carry a merged
    /// `TelemetryReport` in their metrics.
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets when poisoned gangs are rebuilt (see [`RespawnPolicy`]).
    pub fn with_respawn(mut self, respawn: RespawnPolicy) -> Self {
        self.respawn = respawn;
        self
    }

    /// Injects a deterministic fault plan into every worker of the pool
    /// (chaos testing — see [`fault::FaultPlan`]).
    #[cfg(feature = "fault-inject")]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Total worker threads across all gangs.
    pub fn total_threads(&self) -> usize {
        self.gangs * self.gang_size
    }
}

/// One job executable on a [`WorkerPool`]: the object-safe core of
/// `smq_algos::engine::DecreaseKeyWorkload`.
///
/// The contract is the same as the engine's: `process` must be correct for
/// any order of task execution, and the job's shared state must make stale
/// tasks detectable (return `false`).
pub trait PoolJob: Sync {
    /// The tasks seeding this job.
    fn seed_tasks(&self) -> Vec<Task>;

    /// Executes one task, pushing follow-up tasks through `push`.  Returns
    /// `true` when the task advanced the job (was *useful*), `false` when
    /// it was stale on arrival (*wasted*).
    fn process(&self, task: Task, push: &mut dyn FnMut(Task), scratch: &mut Scratch) -> bool;
}

/// Accounting from one pool job.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Wall-clock and scheduler-operation metrics, carved per-job out of
    /// the persistent worker handles via `OpStats::delta_since`.  Covers
    /// exactly the workers of the gangs this job claimed — the job's
    /// metrics slice.
    pub metrics: RunMetrics,
    /// Tasks whose execution advanced the job.
    pub useful_tasks: u64,
    /// Stale tasks (wasted work caused by priority relaxation).
    pub wasted_tasks: u64,
}

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned over the pool's entire lifetime.  Equals the
    /// configured fleet size unless a poisoned gang was respawned (each
    /// rebuild spawns `gang_size` fresh threads); at zero faults this is
    /// the metric service tests assert "zero thread respawns" with.
    pub threads_spawned: u64,
    /// Scheduler handles created over the pool's entire lifetime.  Each
    /// worker creates its handle once before its first park and reuses it
    /// for every job, so after warm-up this equals `threads_spawned`: a
    /// 1000-job service run performs **zero** handle allocations past the
    /// first job on each worker.
    pub handles_created: u64,
    /// Jobs fully executed so far (across all gangs).
    pub jobs_completed: u64,
    /// Gangs poisoned by a panicking job, cumulatively — a respawned gang
    /// still counts here (compare with [`gangs_respawned`](Self::gangs_respawned)).
    pub gangs_poisoned: u64,
    /// Poisoned gangs rebuilt with fresh threads and a fresh scheduler from
    /// the pool's factory (see [`RespawnPolicy`]).
    pub gangs_respawned: u64,
}

/// Reason codes for [`JobControl::reason`] — which limit tripped first.
const CANCEL_DEADLINE: u8 = 1;
const CANCEL_BUDGET: u8 = 2;

/// Shared cancellation state for one limited job, cloned into **every**
/// gang the job claimed so limits are job-wide: whichever worker trips the
/// deadline or budget first cancels the whole job.  Only allocated when the
/// job's [`JobSpec`] carries a limit — unlimited jobs stay on the
/// zero-overhead path.
struct JobControl {
    /// Workers poll this in the shared worker loop; once set they drain
    /// their queues without processing (see `LoopControl::cancel`).
    cancel: AtomicBool,
    /// Which limit tripped (`CANCEL_DEADLINE` / `CANCEL_BUDGET`); written
    /// once, before `cancel` is raised.
    reason: AtomicU8,
    /// Tasks *processed* so far across all of the job's workers.
    budget_used: AtomicU64,
    /// Task budget; 0 = unlimited.
    budget: u64,
    /// Wall-clock deadline, checked every [`Self::CHECK_EVERY`] tasks.
    deadline: Option<Instant>,
}

impl JobControl {
    /// How many processed tasks a worker batches between deadline checks
    /// (`Instant::now` is the only non-trivial cost on the limited path).
    const CHECK_EVERY: u32 = 16;

    fn new(spec: &JobSpec) -> Self {
        Self {
            cancel: AtomicBool::new(false),
            reason: AtomicU8::new(0),
            budget_used: AtomicU64::new(0),
            budget: spec.budget.unwrap_or(0),
            deadline: spec.deadline,
        }
    }

    /// Records one processed task and trips the budget limit when crossed.
    fn note_processed(&self) {
        let used = self.budget_used.fetch_add(1, Ordering::Relaxed) + 1;
        if self.budget != 0 && used >= self.budget {
            self.trip(CANCEL_BUDGET);
        }
    }

    fn check_deadline(&self) {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.trip(CANCEL_DEADLINE);
            }
        }
    }

    /// First tripper wins; the reason is published before the flag so any
    /// reader that observes `cancel` also observes a reason.
    fn trip(&self, reason: u8) {
        if self
            .reason
            .compare_exchange(0, reason, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.cancel.store(true, Ordering::Release);
        }
    }

    fn cancelled_reason(&self) -> Option<JobError> {
        if !self.cancel.load(Ordering::Acquire) {
            return None;
        }
        Some(match self.reason.load(Ordering::Acquire) {
            CANCEL_BUDGET => JobError::BudgetExceeded,
            _ => JobError::DeadlineExceeded,
        })
    }
}

// ---------------------------------------------------------------------------
// Scheduler erasure: a minimal object-safe mirror of `Scheduler<Task>`, so
// heterogeneous pools (different scheduler types per gang) can exist behind
// the non-generic `WorkerPool`.  Homogeneous pools — every constructor
// except `new_mixed` — do NOT pay for this vtable: their workers run a
// monomorphized entry that recovers the concrete scheduler type, so every
// push/pop/batch call is a direct (usually inlined) call.
// ---------------------------------------------------------------------------

/// Object-safe mirror of `Scheduler<Task>`, blanket-implemented for every
/// scheduler.  Only [`WorkerPool::new_mixed`] pools dispatch through it;
/// its batch entries keep even that erased path at **one indirect call per
/// batch** instead of one per task.
pub trait DynScheduler: Sync {
    /// Creates the boxed erased handle for worker `tid`.
    fn dyn_handle(&self, tid: usize) -> Box<dyn DynHandle + '_>;
    /// Mirror of `Scheduler::num_threads`.
    fn num_threads(&self) -> usize;
}

/// Object-safe mirror of `SchedulerHandle<Task>` (see [`DynScheduler`]).
pub trait DynHandle {
    /// Mirror of `SchedulerHandle::push`.
    fn push(&mut self, task: Task);
    /// Mirror of `SchedulerHandle::pop`.
    fn pop(&mut self) -> Option<Task>;
    /// Mirror of `SchedulerHandle::push_batch`: one virtual call moves the
    /// whole batch.
    fn push_batch(&mut self, tasks: &mut Vec<Task>);
    /// Mirror of `SchedulerHandle::pop_batch`: one virtual call fills the
    /// whole batch.
    fn pop_batch(&mut self, out: &mut Vec<Task>, max: usize) -> usize;
    /// Mirror of `SchedulerHandle::flush`.
    fn flush(&mut self);
    /// Mirror of `SchedulerHandle::stats`.
    fn stats(&self) -> OpStats;
    /// Mirror of `SchedulerHandle::min_key_hint`.
    fn min_key_hint(&self) -> Option<u64>;
}

impl<S: Scheduler<Task>> DynScheduler for S {
    fn dyn_handle(&self, tid: usize) -> Box<dyn DynHandle + '_> {
        Box::new(Scheduler::handle(self, tid))
    }

    fn num_threads(&self) -> usize {
        Scheduler::num_threads(self)
    }
}

impl<H: SchedulerHandle<Task>> DynHandle for H {
    fn push(&mut self, task: Task) {
        SchedulerHandle::push(self, task);
    }

    fn pop(&mut self) -> Option<Task> {
        SchedulerHandle::pop(self)
    }

    fn push_batch(&mut self, tasks: &mut Vec<Task>) {
        SchedulerHandle::push_batch(self, tasks);
    }

    fn pop_batch(&mut self, out: &mut Vec<Task>, max: usize) -> usize {
        SchedulerHandle::pop_batch(self, out, max)
    }

    fn flush(&mut self) {
        SchedulerHandle::flush(self);
    }

    fn stats(&self) -> OpStats {
        SchedulerHandle::stats(self)
    }

    fn min_key_hint(&self) -> Option<u64> {
        SchedulerHandle::min_key_hint(self)
    }
}

/// `SchedulerHandle` for the boxed erased handle, so the shared
/// `worker_loop` (generic over `H: SchedulerHandle<T>`) drives it directly.
/// The batch forwards are what make the erased hot path batch-granular:
/// one indirect call per batch, not per task.
impl SchedulerHandle<Task> for Box<dyn DynHandle + '_> {
    #[inline]
    fn push(&mut self, task: Task) {
        (**self).push(task);
    }

    #[inline]
    fn pop(&mut self) -> Option<Task> {
        (**self).pop()
    }

    #[inline]
    fn push_batch(&mut self, tasks: &mut Vec<Task>) {
        (**self).push_batch(tasks);
    }

    #[inline]
    fn pop_batch(&mut self, out: &mut Vec<Task>, max: usize) -> usize {
        (**self).pop_batch(out, max)
    }

    #[inline]
    fn flush(&mut self) {
        (**self).flush();
    }

    #[inline]
    fn stats(&self) -> OpStats {
        (**self).stats()
    }

    #[inline]
    fn min_key_hint(&self) -> Option<u64> {
        (**self).min_key_hint()
    }
}

/// Lifetime-erased pointer to one gang's scheduler.
///
/// # Safety invariant
/// The pointee must stay alive and unmoved until every worker thread of the
/// owning gang has been joined.  `WorkerPool::new` /
/// `WorkerPool::new_partitioned` guarantee this by boxing the schedulers
/// and joining in `Drop` before the boxes are released;
/// `WorkerPool::with_borrowed` by joining before the borrow ends.
#[derive(Clone, Copy)]
struct SchedulerRef(*const (dyn DynScheduler + 'static));
// SAFETY: the pointee is `Sync` (required by `Scheduler`) and the pointer
// is only dereferenced while the invariant above holds.
unsafe impl Send for SchedulerRef {}
unsafe impl Sync for SchedulerRef {}

/// Lifetime-erased pointer to a job currently being executed.
///
/// # Safety invariant
/// Valid only while some claimed gang still runs the publishing job:
/// `execute` blocks until every worker of every claimed gang has finished
/// (or abandoned) the job before its `&dyn PoolJob` borrow ends.
#[derive(Clone, Copy)]
struct JobRef(*const (dyn PoolJob + 'static));
// SAFETY: the pointee is `Sync` and only dereferenced under the invariant.
unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

/// What one worker reports back after finishing its share of a job.
struct WorkerResult {
    executed: u64,
    scans: u64,
    useful: u64,
    wasted: u64,
    stats: OpStats,
    telemetry: Option<WorkerReport>,
}

/// One gang's job hand-off slot; its workers park on it.
struct JobState {
    /// Monotone job sequence number; workers track the last one they ran.
    seq: u64,
    /// The job being executed, `None` while the gang is idle.
    job: Option<JobRef>,
    /// Per-worker (local tid) seed slices for the current job, taken once.
    seeds: Vec<Option<Vec<Task>>>,
    /// Shared limit state of the current job (`None` for unlimited jobs).
    control: Option<Arc<JobControl>>,
    /// Workers still running the current job.
    remaining: usize,
    /// Per-worker results of the current job.
    results: Vec<Option<WorkerResult>>,
    /// Set when a worker panicked mid-job; the gang is retired (and, on
    /// factory pools, later respawned).
    poisoned: bool,
    /// Set once per thread generation; parked workers exit instead of
    /// waiting for the next job.  Cleared again by a respawn.
    shutdown: bool,
}

impl JobState {
    /// The idle state fresh worker threads expect: `seq` restarts at 0 so a
    /// respawned gang's workers (whose `last_seq` starts at 0) never see a
    /// phantom job from before the rebuild.
    fn fresh(size: usize) -> Self {
        Self {
            seq: 0,
            job: None,
            seeds: Vec::new(),
            control: None,
            remaining: 0,
            results: (0..size).map(|_| None).collect(),
            poisoned: false,
            shutdown: false,
        }
    }
}

/// One independent worker gang: scheduler, detector, and hand-off state.
struct Gang {
    size: usize,
    /// NUMA node this gang is placed on, when the pool has a topology —
    /// kept so respawned threads get the same `smq-pool-n{node}-…` names.
    node: Option<usize>,
    /// The gang's scheduler; replaced wholesale on respawn.  Workers read
    /// it exactly once, at thread start.
    scheduler: Mutex<SchedulerRef>,
    /// Owns the pointee of `scheduler` for owning pools (`None` when the
    /// scheduler is borrowed).  Only ever replaced *after* every thread of
    /// the previous generation is joined, so the erased pointer cannot
    /// dangle.
    keeper: Mutex<Option<Box<dyn std::any::Any + Send + Sync>>>,
    /// Join handles of this gang's current worker threads.
    threads: Mutex<Vec<JoinHandle<()>>>,
    detector: TerminationDetector,
    state: Mutex<JobState>,
    /// Workers wait here for `seq` to advance (or `shutdown`).
    job_ready: Condvar,
    /// The coordinator waits here for `remaining` to hit zero.
    job_done: Condvar,
    /// Set when a worker of this gang dies mid-job.  A dead worker's
    /// thread-local queues can strand tasks nobody else may serve, so
    /// quiescence would never be reached — survivors poll this in the
    /// worker loop's empty-pop path and bail out instead of spinning
    /// forever.
    aborted: AtomicBool,
}

/// The FIFO gang allocator's shared state.
struct ClaimState {
    /// Indices of idle, live gangs.
    free: Vec<usize>,
    /// Indices of gangs retired by a job panic, awaiting respawn (or
    /// permanently dead on pools that cannot respawn).
    dead: Vec<usize>,
    /// Gangs poisoned over the pool's lifetime (cumulative — respawning a
    /// gang does not un-count its poisoning).
    poisoned_total: u64,
    /// Poisoned gangs rebuilt over the pool's lifetime.
    respawned_total: u64,
    /// FIFO admission: tickets are served strictly in issue order, so a
    /// whole-fleet job cannot be starved by a stream of one-gang jobs.
    next_ticket: u64,
    now_serving: u64,
}

/// The per-worker thread entry installed by the constructor: the typed
/// (monomorphized) entry for homogeneous pools, the erased entry for
/// [`WorkerPool::new_mixed`].  The signature mentions no scheduler type, so
/// one plain function pointer serves both.
type WorkerEntry = fn(&Arc<Inner>, usize, usize);

/// Rebuilds one gang's scheduler: returns the erased ref and the box that
/// owns its pointee.  Stored by factory constructors so poisoned gangs can
/// be respawned with a fresh scheduler.
type RespawnFactory =
    Box<dyn Fn(usize) -> (SchedulerRef, Box<dyn std::any::Any + Send + Sync>) + Send + Sync>;

struct Inner {
    gangs: Vec<Gang>,
    loop_config: WorkerLoopConfig,
    /// The fleet-wide instrumentation configuration (disabled by default).
    telemetry: TelemetryConfig,
    /// Construction instant shared by every worker's trace lane, so all
    /// lanes of the pool's lifetime sit on one clock.
    origin: Instant,
    claims: Mutex<ClaimState>,
    /// Claimers wait here for their turn and for enough free gangs.
    claim_ready: Condvar,
    /// Scheduler handles created over the pool's lifetime.  Each worker
    /// creates its handle exactly once, before its first park, and keeps it
    /// across every job — so after warm-up this equals the fleet size and
    /// never grows again (the service tests' "zero handle allocations after
    /// warm-up" metric, companion to `PoolStats::threads_spawned`).
    handles_created: AtomicU64,
    /// Worker threads spawned over the pool's lifetime (fleet size, plus
    /// `gang_size` per respawn).
    threads_spawned: AtomicU64,
    /// The thread entry every worker of this pool runs.
    entry: WorkerEntry,
    /// Present on factory-built pools: how to rebuild a gang's scheduler.
    respawn_factory: Option<RespawnFactory>,
    respawn_policy: RespawnPolicy,
    /// Deterministic fault schedule shared by every worker (chaos testing).
    #[cfg(feature = "fault-inject")]
    faults: Option<FaultPlan>,
}

/// Ignore `std` mutex poisoning: the pool has its own `poisoned` flags with
/// precise semantics, and state reads are safe after a panic.
fn lock<T>(state: &Mutex<T>) -> MutexGuard<'_, T> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// The accounting of the last job `execute` finished *on this thread*
    /// (trace lanes stripped).  The job service brackets each job with
    /// [`clear_last_job_output`]/[`take_last_job_output`] to attach the
    /// per-job metrics delta to its [`JobCompletion`] without changing the
    /// user-facing job-closure signature.
    static LAST_JOB_OUTPUT: std::cell::RefCell<Option<JobOutput>> =
        const { std::cell::RefCell::new(None) };
}

/// Drops any stale capture left by a previous job on this thread.
pub(crate) fn clear_last_job_output() {
    LAST_JOB_OUTPUT.with(|slot| slot.borrow_mut().take());
}

/// Takes the capture published by the most recent `execute` on this thread.
pub(crate) fn take_last_job_output() -> Option<JobOutput> {
    LAST_JOB_OUTPUT.with(|slot| slot.borrow_mut().take())
}

thread_local! {
    /// The typed error of the last failed `run_job*` call *on this thread*.
    /// The job service brackets each job with [`clear_last_job_error`] /
    /// [`take_last_job_error`] so it can classify a failure (lost vs.
    /// cancelled vs. no capacity) even when the user's closure swallows or
    /// unwraps the `Result` itself.
    static LAST_JOB_ERROR: std::cell::Cell<Option<JobError>> = const { std::cell::Cell::new(None) };

    /// The [`JobSpec`] `run_job`/`run_job_on` calls on this thread apply.
    /// Set by the service dispatcher around a limited job's closure, so the
    /// user-facing closure signature (`|pool| pool.run_job(..)`) stays
    /// spec-free.
    static CURRENT_JOB_SPEC: std::cell::Cell<JobSpec> = const { std::cell::Cell::new(JobSpec {
        deadline: None,
        budget: None,
    }) };
}

/// Drops any stale error left by a previous job on this thread.
pub(crate) fn clear_last_job_error() {
    LAST_JOB_ERROR.with(|slot| slot.set(None));
}

/// Takes the error recorded by the most recent failed `run_job*`.
pub(crate) fn take_last_job_error() -> Option<JobError> {
    LAST_JOB_ERROR.with(|slot| slot.take())
}

/// Installs the spec `run_job`/`run_job_on` on this thread will apply.
pub(crate) fn set_current_job_spec(spec: JobSpec) {
    CURRENT_JOB_SPEC.with(|slot| slot.set(spec));
}

/// Resets this thread's ambient spec to unlimited.
pub(crate) fn clear_current_job_spec() {
    CURRENT_JOB_SPEC.with(|slot| slot.set(JobSpec::default()));
}

fn current_job_spec() -> JobSpec {
    CURRENT_JOB_SPEC.with(|slot| slot.get())
}

/// Gangs held by one job; returns live gangs to the allocator on drop (also
/// on unwind) and retires poisoned ones (respawning them right away under
/// [`RespawnPolicy::Eager`]).
struct GangClaim<'p> {
    inner: &'p Arc<Inner>,
    gangs: Vec<usize>,
}

impl Drop for GangClaim<'_> {
    fn drop(&mut self) {
        let inner = self.inner;
        let mut st = lock(&inner.claims);
        for &g in &self.gangs {
            if lock(&inner.gangs[g].state).poisoned {
                st.poisoned_total += 1;
                st.dead.push(g);
            } else {
                st.free.push(g);
            }
        }
        if inner.respawn_policy == RespawnPolicy::Eager && inner.respawn_factory.is_some() {
            while let Some(g) = st.dead.pop() {
                respawn_gang(inner, &mut st, g);
            }
        }
        // Wake every waiter: the head ticket re-checks its gang count, and
        // if all gangs just died for good, everyone observes that and fails.
        inner.claim_ready.notify_all();
    }
}

/// Rebuilds one poisoned gang: joins the previous thread generation, swaps
/// in a fresh scheduler from the pool's factory, resets the hand-off state,
/// and spawns `gang_size` fresh threads.  Called with the claims lock held
/// (`st`); the gang must be off both the free and dead lists.
fn respawn_gang(inner: &Arc<Inner>, st: &mut ClaimState, g: usize) {
    let factory = inner
        .respawn_factory
        .as_ref()
        .expect("respawn requires a scheduler factory");
    let gang = &inner.gangs[g];
    // Drain the survivors: a poisoned gang's live workers are parked (their
    // completion guards already ran), so a gang-local shutdown flag plus a
    // wake is all it takes for them to exit.  The panicked worker's handle
    // reports `Err` from `join`; just reap it.
    {
        let mut gst = lock(&gang.state);
        gst.shutdown = true;
        gang.job_ready.notify_all();
    }
    for handle in lock(&gang.threads).drain(..) {
        let _ = handle.join();
    }
    // Every old thread is gone, so the old scheduler (possibly left mid-op
    // by the panic) can be dropped and replaced.  Order matters: the old
    // keeper must outlive the joins above, never the other way around.
    let (scheduler, keeper) = factory(g);
    *lock(&gang.scheduler) = scheduler;
    *lock(&gang.keeper) = Some(keeper);
    *lock(&gang.state) = JobState::fresh(gang.size);
    gang.aborted.store(false, Ordering::Release);
    // A fresh generation also zeroes the detector counters the panicked
    // job left unbalanced.
    gang.detector.advance_generation();
    spawn_gang_threads(inner, g);
    st.respawned_total += 1;
    st.free.push(g);
}

/// Spawns `gang_size` worker threads for gang `gang_idx`, registering their
/// handles on the gang.  On a spawn failure the whole fleet (every gang's
/// already-running threads) is shut down and joined *before* unwinding:
/// without that, live workers could outlive the (possibly borrowed) erased
/// scheduler pointers — a use-after-free, not just a leak.
fn spawn_gang_threads(inner: &Arc<Inner>, gang_idx: usize) {
    let gang = &inner.gangs[gang_idx];
    for local in 0..gang.size {
        let name = match gang.node {
            Some(node) => format!("smq-pool-n{node}-{gang_idx}-{local}"),
            None => format!("smq-pool-{gang_idx}-{local}"),
        };
        let worker_inner = Arc::clone(inner);
        let entry = inner.entry;
        match std::thread::Builder::new()
            .name(name)
            .spawn(move || entry(&worker_inner, gang_idx, local))
        {
            Ok(handle) => {
                lock(&gang.threads).push(handle);
                inner.threads_spawned.fetch_add(1, Ordering::Relaxed);
            }
            Err(error) => {
                for g in &inner.gangs {
                    let mut gst = lock(&g.state);
                    gst.shutdown = true;
                    g.job_ready.notify_all();
                }
                for g in &inner.gangs {
                    for handle in lock(&g.threads).drain(..) {
                        let _ = handle.join();
                    }
                }
                panic!("failed to spawn pool worker {gang_idx}-{local}: {error}");
            }
        }
    }
}

/// A resident fleet of worker threads, partitioned into gangs, executing a
/// stream of [`PoolJob`]s against long-lived schedulers.
///
/// Workers are spawned once at construction and parked between jobs;
/// [`run_job`](Self::run_job) wakes the whole fleet for one job, while
/// [`run_job_on`](Self::run_job_on) occupies only a few gangs so that up to
/// `gangs` jobs run concurrently.  Queueing and multi-client admission live
/// in [`JobService`].
pub struct WorkerPool {
    inner: Arc<Inner>,
    jobs_completed: AtomicU64,
}

/// Erases one freshly built scheduler: the ref points into the box, and the
/// box (the *keeper*) must outlive every thread that dereferences the ref.
fn erase_scheduler<S>(scheduler: S) -> (SchedulerRef, Box<dyn std::any::Any + Send + Sync>)
where
    S: Scheduler<Task> + Send + Sync + 'static,
{
    let boxed: Box<S> = Box::new(scheduler);
    let erased: &(dyn DynScheduler + 'static) = &*boxed;
    let ptr: *const (dyn DynScheduler + 'static) = erased;
    (SchedulerRef(ptr), boxed)
}

impl WorkerPool {
    /// Spawns a single-gang resident pool owning `scheduler`.
    ///
    /// The scheduler lives as long as the pool.  Requires
    /// `config.gangs == 1` (one scheduler serves exactly one gang) — build
    /// multi-gang pools with [`new_partitioned`](Self::new_partitioned).
    /// No factory means no respawn: a poisoned gang stays dead.
    pub fn new<S>(scheduler: S, config: PoolConfig) -> WorkerPool
    where
        S: Scheduler<Task> + Send + Sync + 'static,
    {
        assert_eq!(
            config.gangs, 1,
            "WorkerPool::new builds a single-gang pool; use new_partitioned for {} gangs",
            config.gangs
        );
        let (sref, keeper) = erase_scheduler(scheduler);
        Self::spawn(
            vec![(sref, Some(keeper))],
            None,
            config,
            worker_main_typed::<S>,
        )
    }

    /// Spawns a pool of `config.gangs` gangs, building each gang's
    /// scheduler with `factory(gang_index)`.
    ///
    /// Every scheduler must be configured for `config.gang_size` threads —
    /// a gang is an independent scheduler universe sized to its workers.
    /// The factory is retained for the pool's lifetime so poisoned gangs
    /// can be **respawned** with a fresh scheduler (see [`RespawnPolicy`]),
    /// which is why it must be `Fn + Send + Sync + 'static`.
    pub fn new_partitioned<S, F>(factory: F, config: PoolConfig) -> WorkerPool
    where
        S: Scheduler<Task> + Send + Sync + 'static,
        F: Fn(usize) -> S + Send + Sync + 'static,
    {
        let make: RespawnFactory = Box::new(move |g| erase_scheduler(factory(g)));
        let schedulers: Vec<_> = (0..config.gangs)
            .map(|g| {
                let (sref, keeper) = make(g);
                (sref, Some(keeper))
            })
            .collect();
        Self::spawn(schedulers, Some(make), config, worker_main_typed::<S>)
    }

    /// Spawns a socket-aligned pool: like
    /// [`new_partitioned`](Self::new_partitioned), but the factory receives
    /// `(gang_index, node)` where `node` is the NUMA node the gang is
    /// placed on (per [`PoolConfig::node_of_gang`]), so each gang's
    /// scheduler can be built NUMA-configured for its own socket.
    ///
    /// Typically used with [`PoolConfig::numa_aligned`]; without a
    /// configured topology every gang reports node 0.
    pub fn new_aligned<S, F>(factory: F, config: PoolConfig) -> WorkerPool
    where
        S: Scheduler<Task> + Send + Sync + 'static,
        F: Fn(usize, usize) -> S + Send + Sync + 'static,
    {
        let nodes: Vec<usize> = (0..config.gangs).map(|g| config.node_of_gang(g)).collect();
        Self::new_partitioned(move |g| factory(g, nodes[g]), config)
    }

    /// Spawns a pool whose gangs may run **different scheduler types** —
    /// the heterogeneous escape hatch behind the same `WorkerPool` API.
    ///
    /// Workers of a mixed pool drive their scheduler through the
    /// [`DynScheduler`]/[`DynHandle`] vtable; thanks to the batch entries,
    /// even this erased path pays one indirect call per *batch* once a
    /// batch size is configured.  Homogeneous pools (every other
    /// constructor) skip the vtable entirely via a monomorphized worker
    /// entry.
    pub fn new_mixed<F>(factory: F, config: PoolConfig) -> WorkerPool
    where
        F: Fn(usize) -> Box<dyn DynScheduler + Send + Sync> + Send + Sync + 'static,
    {
        let make: RespawnFactory = Box::new(move |g| {
            // Double-box: the inner box's heap pointee is what the ref
            // targets, so moving the outer keeper never invalidates it.
            let boxed: Box<dyn DynScheduler + Send + Sync> = factory(g);
            let erased: &(dyn DynScheduler + 'static) = &*boxed;
            let ptr: *const (dyn DynScheduler + 'static) = erased;
            (
                SchedulerRef(ptr),
                Box::new(boxed) as Box<dyn std::any::Any + Send + Sync>,
            )
        });
        let schedulers: Vec<_> = (0..config.gangs)
            .map(|g| {
                let (sref, keeper) = make(g);
                (sref, Some(keeper))
            })
            .collect();
        Self::spawn(schedulers, Some(make), config, worker_main_dyn)
    }

    /// Runs `f` against a transient single-gang pool built on a *borrowed*
    /// scheduler, joining every worker before returning (also on unwind).
    ///
    /// This is the scoped mode behind one-shot `engine::run_parallel` calls:
    /// same worker-loop semantics as the resident pool, without requiring
    /// `'static` ownership of the scheduler.
    pub fn with_borrowed<S, R>(
        scheduler: &S,
        config: PoolConfig,
        f: impl FnOnce(&WorkerPool) -> R,
    ) -> R
    where
        S: Scheduler<Task>,
    {
        assert_eq!(config.gangs, 1, "with_borrowed builds a single-gang pool");
        let erased: &dyn DynScheduler = scheduler;
        // SAFETY: the erased pointer outlives every dereference because the
        // pool joins all workers before this function returns: on the happy
        // path via the explicit `shutdown`, on unwind via `Drop`.  `f` only
        // receives `&WorkerPool`, so the pool cannot escape or be leaked.
        let ptr: *const (dyn DynScheduler + 'static) =
            unsafe { std::mem::transmute(erased as *const dyn DynScheduler) };
        let mut pool = Self::spawn(
            vec![(SchedulerRef(ptr), None)],
            None,
            config,
            worker_main_typed::<S>,
        );
        let result = f(&pool);
        pool.shutdown();
        result
    }

    fn spawn(
        schedulers: Vec<(SchedulerRef, Option<Box<dyn std::any::Any + Send + Sync>>)>,
        respawn_factory: Option<RespawnFactory>,
        config: PoolConfig,
        entry: WorkerEntry,
    ) -> WorkerPool {
        assert!(config.gangs >= 1, "need at least one gang");
        assert!(config.gang_size >= 1, "need at least one worker per gang");
        assert_eq!(schedulers.len(), config.gangs, "one scheduler per gang");
        if let Some(topology) = &config.topology {
            assert_eq!(
                topology.num_threads(),
                config.total_threads(),
                "topology must cover the pool's whole fleet"
            );
            assert_eq!(
                topology.threads_per_node() % config.gang_size,
                0,
                "gang size must divide threads_per_node so gangs never straddle a node"
            );
        }
        for (g, (scheduler, _)) in schedulers.iter().enumerate() {
            // SAFETY: the pointees are alive for the whole constructor.
            let scheduler_threads = unsafe { (*scheduler.0).num_threads() };
            assert_eq!(
                config.gang_size, scheduler_threads,
                "gang {g}: pool gang size must match the scheduler's thread count"
            );
        }

        let gangs: Vec<Gang> = schedulers
            .into_iter()
            .enumerate()
            .map(|(g, (scheduler, keeper))| Gang {
                size: config.gang_size,
                // Socket-aligned pools carry the node in the worker
                // identity so thread dumps show placement at a glance.
                node: config.topology.as_ref().map(|_| config.node_of_gang(g)),
                scheduler: Mutex::new(scheduler),
                keeper: Mutex::new(keeper),
                threads: Mutex::new(Vec::with_capacity(config.gang_size)),
                detector: TerminationDetector::new(config.gang_size),
                state: Mutex::new(JobState::fresh(config.gang_size)),
                job_ready: Condvar::new(),
                job_done: Condvar::new(),
                aborted: AtomicBool::new(false),
            })
            .collect();

        let inner = Arc::new(Inner {
            claims: Mutex::new(ClaimState {
                free: (0..gangs.len()).collect(),
                dead: Vec::new(),
                poisoned_total: 0,
                respawned_total: 0,
                next_ticket: 0,
                now_serving: 0,
            }),
            claim_ready: Condvar::new(),
            loop_config: config.worker.clone(),
            telemetry: config.telemetry.clone(),
            origin: Instant::now(),
            handles_created: AtomicU64::new(0),
            threads_spawned: AtomicU64::new(0),
            entry,
            respawn_factory,
            respawn_policy: config.respawn,
            #[cfg(feature = "fault-inject")]
            faults: config.faults.clone(),
            gangs,
        });

        for gang in 0..config.gangs {
            spawn_gang_threads(&inner, gang);
        }

        WorkerPool {
            inner,
            jobs_completed: AtomicU64::new(0),
        }
    }

    /// Total number of resident worker threads (all gangs).
    pub fn threads(&self) -> usize {
        self.inner.gangs.iter().map(|g| g.size).sum()
    }

    /// Number of worker gangs (the maximum number of concurrent jobs).
    pub fn gangs(&self) -> usize {
        self.inner.gangs.len()
    }

    /// Workers per gang.
    pub fn gang_size(&self) -> usize {
        self.inner.gangs[0].size
    }

    /// Gangs not currently retired by a job panic (respawn brings retired
    /// gangs back — see [`RespawnPolicy`]).
    pub fn live_gangs(&self) -> usize {
        let st = lock(&self.inner.claims);
        self.inner.gangs.len() - st.dead.len()
    }

    /// Lifetime counters: threads spawned (fleet size, plus `gang_size` per
    /// gang respawn), jobs completed, gangs lost to job panics, and gangs
    /// rebuilt afterwards.
    pub fn stats(&self) -> PoolStats {
        let st = lock(&self.inner.claims);
        PoolStats {
            threads_spawned: self.inner.threads_spawned.load(Ordering::Relaxed),
            handles_created: self.inner.handles_created.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            gangs_poisoned: st.poisoned_total,
            gangs_respawned: st.respawned_total,
        }
    }

    /// Forces an immediate rebuild of every dead gang (factory pools only);
    /// returns how many were respawned.  [`RespawnPolicy::Lazy`] pools do
    /// this implicitly at the next claim — this entry point exists so tests
    /// and benchmarks can restore full capacity at a deterministic moment.
    pub fn respawn_dead(&self) -> usize {
        if self.inner.respawn_factory.is_none() {
            return 0;
        }
        let mut st = lock(&self.inner.claims);
        let mut rebuilt = 0;
        while let Some(g) = st.dead.pop() {
            respawn_gang(&self.inner, &mut st, g);
            rebuilt += 1;
        }
        if rebuilt > 0 {
            self.inner.claim_ready.notify_all();
        }
        rebuilt
    }

    /// Claims `want` gangs (capped to the live gang count) in strict FIFO
    /// order.  Blocks until this caller is at the head of the queue *and*
    /// enough gangs are idle.  Dead gangs are respawned here first (the
    /// [`RespawnPolicy::Lazy`] path), so on factory pools capacity recovers
    /// before admission is decided.
    ///
    /// Fails with [`JobError::NoCapacity`] when every gang is dead and none
    /// can be respawned.  That state is *permanent* (only a panic kills a
    /// gang, only a factory revives one), so failing every waiter — ticket
    /// order notwithstanding — is sound: no later ticket could ever be
    /// served either.
    fn claim(&self, want: usize) -> Result<GangClaim<'_>, JobError> {
        let inner = &self.inner;
        let mut st = lock(&inner.claims);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        loop {
            if inner.respawn_factory.is_some() && inner.respawn_policy != RespawnPolicy::Never {
                let mut respawned = false;
                while let Some(g) = st.dead.pop() {
                    respawn_gang(inner, &mut st, g);
                    respawned = true;
                }
                if respawned {
                    // Freed capacity may unblock the head ticket, which is
                    // not necessarily us.
                    inner.claim_ready.notify_all();
                }
            }
            let live = inner.gangs.len() - st.dead.len();
            if live == 0 {
                return Err(JobError::NoCapacity);
            }
            let need = want.clamp(1, live);
            if st.now_serving == ticket && st.free.len() >= need {
                let at = st.free.len() - need;
                let taken = st.free.split_off(at);
                st.now_serving += 1;
                // The next ticket may already be satisfiable (enough gangs
                // still free): let it through without waiting for a release.
                inner.claim_ready.notify_all();
                return Ok(GangClaim {
                    inner,
                    gangs: taken,
                });
            }
            st = inner
                .claim_ready
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Executes one job on the **whole fleet** (every live gang) and
    /// returns its accounting.
    ///
    /// Blocks until the job is quiescent.  Concurrent callers are admitted
    /// in FIFO order; on a single-gang pool this is exactly the historical
    /// one-job-at-a-time behaviour.  A panicking job poisons the gangs it
    /// ran on and resolves to [`Err(JobError::Lost)`](JobError::Lost) —
    /// other gangs and callers are unaffected (see the module docs).
    ///
    /// Applies the ambient [`JobSpec`] installed by the service dispatcher,
    /// if any; direct callers run unlimited (use
    /// [`run_job_with`](Self::run_job_with) for explicit limits).
    pub fn run_job(&self, job: &dyn PoolJob) -> Result<JobOutput, JobError> {
        let spec = current_job_spec();
        self.run_job_with(job, self.inner.gangs.len(), &spec)
    }

    /// Executes one job on up to `gangs` gangs (at least one; capped to the
    /// live gang count), leaving the rest of the fleet free for concurrent
    /// jobs.
    ///
    /// `run_job_on(job, 1)` is the service mode for small jobs: each
    /// occupies one gang, so a pool with G gangs serves G jobs at once.
    pub fn run_job_on(&self, job: &dyn PoolJob, gangs: usize) -> Result<JobOutput, JobError> {
        let spec = current_job_spec();
        self.run_job_with(job, gangs, &spec)
    }

    /// Executes one job on up to `gangs` gangs under the given limits: the
    /// job is cooperatively cancelled — not poisoned — if it outlives
    /// `spec.deadline` or processes more than `spec.budget` tasks (see the
    /// module docs).
    pub fn run_job_with(
        &self,
        job: &dyn PoolJob,
        gangs: usize,
        spec: &JobSpec,
    ) -> Result<JobOutput, JobError> {
        assert!(gangs >= 1, "a job needs at least one gang");
        let result = self.run_job_inner(job, gangs, spec);
        if let Err(error) = result {
            // Publish the typed error for the service dispatcher, which
            // classifies outcomes even when the user closure discards the
            // `Result` (see `LAST_JOB_ERROR`).
            LAST_JOB_ERROR.with(|slot| slot.set(Some(error)));
        }
        result
    }

    fn run_job_inner(
        &self,
        job: &dyn PoolJob,
        gangs: usize,
        spec: &JobSpec,
    ) -> Result<JobOutput, JobError> {
        if spec
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            // Already over-deadline: shed without claiming any capacity.
            return Err(JobError::DeadlineExceeded);
        }
        let claim = self.claim(gangs)?;
        self.execute(job, &claim, spec)
    }

    /// Runs `job` on the claimed gangs: seeds split round-robin across all
    /// participating workers, every gang runs to quiescence under a fresh
    /// detector generation, results are merged into one metrics slice.
    fn execute(
        &self,
        job: &dyn PoolJob,
        claim: &GangClaim<'_>,
        spec: &JobSpec,
    ) -> Result<JobOutput, JobError> {
        let inner = &*self.inner;
        // One shared control for the whole job (all claimed gangs), so
        // whichever worker trips a limit cancels the job everywhere.
        // Unlimited jobs allocate nothing and keep the historic hot path.
        let control: Option<Arc<JobControl>> = if spec.is_unlimited() {
            None
        } else {
            Some(Arc::new(JobControl::new(spec)))
        };
        let gang_idxs = &claim.gangs;
        let total_workers: usize = gang_idxs.iter().map(|&g| inner.gangs[g].size).sum();

        // Split the seeds round-robin over every participating worker so
        // each seeds its own queues, exactly like the one-shot executor.
        // (gang, local tid) pairs in a fixed order define the mapping.
        let mut seeds: Vec<Vec<Task>> = (0..total_workers).map(|_| Vec::new()).collect();
        for (i, task) in job.seed_tasks().into_iter().enumerate() {
            seeds[i % total_workers].push(task);
        }

        // SAFETY: `execute` does not return before every worker of every
        // claimed gang finished (or abandoned) this job, so the erased
        // borrow outlives all uses.
        let job_ref = JobRef(unsafe {
            std::mem::transmute::<*const dyn PoolJob, *const (dyn PoolJob + 'static)>(
                job as *const dyn PoolJob,
            )
        });

        let start = Instant::now();
        let mut seeds = seeds.into_iter();
        for &g in gang_idxs {
            let gang = &inner.gangs[g];
            // Fresh termination generation for this job: the gang was idle
            // (it came off the free list), so all its workers are parked
            // and zeroing the counters races nothing; stale tallies from
            // the previous job cannot leak in (they assert in debug builds,
            // and a scan spanning the reset invalidates itself).
            gang.detector.advance_generation();
            let gang_seeds: Vec<Vec<Task>> = (0..gang.size)
                .map(|_| seeds.next().expect("seed split covers every worker"))
                .collect();
            for (local, seed) in gang_seeds.iter().enumerate() {
                gang.detector.preload(local, seed.len() as u64);
            }
            let mut st = lock(&gang.state);
            debug_assert!(!st.poisoned, "claimed a poisoned gang");
            assert!(!st.shutdown, "worker pool is shut down");
            st.seq += 1;
            st.job = Some(job_ref);
            st.seeds = gang_seeds.into_iter().map(Some).collect();
            st.control = control.clone();
            st.remaining = gang.size;
            st.results = (0..gang.size).map(|_| None).collect();
            gang.job_ready.notify_all();
        }

        let mut results: Vec<WorkerResult> = Vec::with_capacity(total_workers);
        let mut any_poisoned = false;
        for &g in gang_idxs {
            let gang = &inner.gangs[g];
            let mut st = lock(&gang.state);
            while st.remaining > 0 {
                st = gang.job_done.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            if st.poisoned {
                any_poisoned = true;
            } else {
                results.extend(
                    st.results
                        .iter_mut()
                        .map(|slot| slot.take().expect("worker finished without a result")),
                );
            }
        }
        // The claim guard (dropped by our caller, also on early returns)
        // retires the poisoned gangs and frees the rest.  Poison takes
        // precedence over cancellation: a job that both tripped a limit
        // and killed a worker is *lost*, not cleanly cancelled.
        if any_poisoned {
            return Err(JobError::Lost);
        }
        if let Some(reason) = control.as_deref().and_then(JobControl::cancelled_reason) {
            // The workers drained to quiescence discarding tasks, so the
            // gangs are clean and immediately reusable; the partial work
            // (and its metrics) is discarded with the job.
            return Err(reason);
        }
        let elapsed = start.elapsed();
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);

        let per_thread: Vec<OpStats> = results.iter().map(|r| r.stats.clone()).collect();
        let total = OpStats::merged(per_thread.iter());
        // Lock-free merge after join: each worker's report was accumulated
        // in plain per-worker state; absorbing them here is the only point
        // the pieces meet.
        let telemetry = if inner.telemetry.is_enabled() {
            let mut report = TelemetryReport::new();
            for result in &mut results {
                if let Some(worker) = result.telemetry.take() {
                    report.absorb(worker);
                }
            }
            Some(report)
        } else {
            None
        };
        let output = JobOutput {
            metrics: RunMetrics {
                elapsed,
                threads: total_workers,
                tasks_executed: results.iter().map(|r| r.executed).sum(),
                quiescence_scans: results.iter().map(|r| r.scans).sum(),
                per_thread,
                total,
                telemetry,
            },
            useful_tasks: results.iter().map(|r| r.useful).sum(),
            wasted_tasks: results.iter().map(|r| r.wasted).sum(),
        };
        // Publish a capture for the job service (same thread ran `execute`),
        // so `JobCompletion` can carry the per-job metrics delta.  Trace
        // lanes are stripped from the capture — completions keep the cheap
        // aggregates (phase times, rank histogram), not event rings.
        LAST_JOB_OUTPUT.with(|slot| {
            let capture = JobOutput {
                metrics: RunMetrics {
                    elapsed: output.metrics.elapsed,
                    threads: output.metrics.threads,
                    tasks_executed: output.metrics.tasks_executed,
                    quiescence_scans: output.metrics.quiescence_scans,
                    per_thread: output.metrics.per_thread.clone(),
                    total: output.metrics.total.clone(),
                    telemetry: output.metrics.telemetry.as_ref().map(|r| TelemetryReport {
                        phases: r.phases.clone(),
                        rank_errors: r.rank_errors.clone(),
                        lanes: Vec::new(),
                    }),
                },
                useful_tasks: output.useful_tasks,
                wasted_tasks: output.wasted_tasks,
            };
            *slot.borrow_mut() = Some(capture);
        });
        Ok(output)
    }

    /// Stops accepting jobs and joins every worker thread.  Called
    /// automatically on drop; idempotent.
    ///
    /// Requires `&mut self`, so no job can be in flight (every `run_job*`
    /// caller borrows the pool shared) — accepted work always drains before
    /// the fleet is torn down.
    pub fn shutdown(&mut self) {
        for gang in &self.inner.gangs {
            let mut st = lock(&gang.state);
            st.shutdown = true;
            gang.job_ready.notify_all();
        }
        for gang in &self.inner.gangs {
            for worker in lock(&gang.threads).drain(..) {
                // A worker that panicked mid-job reports `Err` here; its
                // gang is already marked poisoned, so just reap the thread.
                let _ = worker.join();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        // The per-gang keepers drop with `inner` after every thread is
        // joined, so no erased scheduler pointer can dangle.
    }
}

/// Decrements `remaining` when the worker leaves the job for any reason; a
/// missing result means the job's `process` panicked, which poisons the
/// gang instead of deadlocking the coordinator.  (The other half of the
/// no-deadlock guarantee lives in `worker_loop`: the in-flight task's
/// completion is recorded even on unwind, so surviving workers can still
/// reach quiescence and publish their results.)
struct CompletionGuard<'a> {
    gang: &'a Gang,
    local: usize,
    result: Option<WorkerResult>,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.gang.state);
        if self.result.is_none() {
            st.poisoned = true;
            // Tell this gang's surviving workers to stop waiting for a
            // quiescence that may now be unreachable (tasks stranded in our
            // local queues).
            self.gang.aborted.store(true, Ordering::Release);
        }
        st.results[self.local] = self.result.take();
        st.remaining -= 1;
        if st.remaining == 0 {
            st.job = None;
            st.control = None;
            self.gang.job_done.notify_all();
        }
    }
}

/// The monomorphized worker entry for homogeneous pools: recovers the
/// concrete scheduler type `S`, so the handle lives on the worker's stack
/// and every hot-path scheduler call in the shared `worker_loop` is a
/// direct (typically inlined) call — no `Box`, no vtable.
fn worker_main_typed<S: Scheduler<Task>>(inner: &Arc<Inner>, gang_idx: usize, local: usize) {
    let gang = &inner.gangs[gang_idx];
    // Read once at thread start: the ref is only ever replaced by a respawn,
    // which joins this whole thread generation first.
    let sref = *lock(&gang.scheduler);
    // SAFETY: the constructor that installed this entry built every gang's
    // scheduler as an `S` (the erased pointer's pointee), and the pool
    // joins this thread before invalidating it (see `SchedulerRef`).
    let scheduler: &S = unsafe { &*(sref.0 as *const S) };
    // One handle and one scratch arena for the thread's whole life: local
    // queues, insert buffers, and scratch capacity all persist across jobs.
    let mut handle = scheduler.handle(local);
    inner.handles_created.fetch_add(1, Ordering::Relaxed);
    run_worker(inner, gang_idx, local, &mut handle);
}

/// The erased worker entry for [`WorkerPool::new_mixed`]: one boxed handle
/// per worker for the thread's whole life, every scheduler call one
/// indirect call (one per *batch* on the batch paths).
fn worker_main_dyn(inner: &Arc<Inner>, gang_idx: usize, local: usize) {
    let gang = &inner.gangs[gang_idx];
    let sref = *lock(&gang.scheduler);
    // SAFETY: the pool joins this thread before invalidating the pointer
    // (see `SchedulerRef`).
    let scheduler: &dyn DynScheduler = unsafe { &*sref.0 };
    let mut handle = scheduler.dyn_handle(local);
    inner.handles_created.fetch_add(1, Ordering::Relaxed);
    run_worker(inner, gang_idx, local, &mut handle);
}

/// The park/execute loop shared by both worker entries, generic over the
/// handle so the typed entry monomorphizes the whole job hot path.
fn run_worker<H: SchedulerHandle<Task>>(
    inner: &Arc<Inner>,
    gang_idx: usize,
    local: usize,
    handle: &mut H,
) {
    let gang = &inner.gangs[gang_idx];
    let mut scratch = Scratch::new();
    let mut last_seq = 0u64;
    // The OS thread name doubles as the trace-lane label, so timelines show
    // `smq-pool-n0-g0-w1`-style identities.  Shared `Arc<str>`: one
    // allocation for the thread's lifetime, not one per instrumented job.
    let worker_name: std::sync::Arc<str> = std::thread::current()
        .name()
        .map(std::sync::Arc::from)
        .unwrap_or_else(|| std::sync::Arc::from(format!("smq-pool-{gang_idx}-{local}").as_str()));
    // When this worker last went idle: backdates the inter-job Park span so
    // traces show parked gaps between jobs instead of missing time.
    let mut idle_since = Instant::now();

    loop {
        // Park until a new job (or shutdown) arrives on this gang.
        let (job_ref, seeds, seq, control) = {
            let mut st = lock(&gang.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq > last_seq {
                    let job_ref = st.job.expect("job published without a body");
                    let seeds = st.seeds[local].take().expect("seed slice taken twice");
                    break (job_ref, seeds, st.seq, st.control.clone());
                }
                st = gang.job_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        last_seq = seq;

        let mut guard = CompletionGuard {
            gang,
            local,
            result: None,
        };

        // SAFETY: valid until this worker's guard decrements `remaining`
        // (see `JobRef`).
        let job: &dyn PoolJob = unsafe { &*job_ref.0 };
        // `H` sees both trait surfaces (`SchedulerHandle` and the blanket
        // `DynHandle`); pin the calls to the view the worker loop uses.
        let stats_before = SchedulerHandle::stats(handle);
        let mut tally = gang.detector.tally(local);
        // `None` when telemetry is disabled: the loop below then runs the
        // exact uninstrumented path (no timestamps, no extra handle calls).
        let mut telemetry = WorkerTelemetry::begin(
            &inner.telemetry,
            worker_name.clone(),
            inner.origin,
            Some(idle_since),
        );
        // Seeds were pre-credited by the coordinator; pushing them needs no
        // recording.  Above batch size 1 a single batch call makes the
        // whole seed slice visible; at batch 1 the per-task path is kept so
        // the default configuration stays bit-identical to the historical
        // behavior, stats included.
        let mut seeds = seeds;
        if inner.loop_config.batch_size > 1 {
            SchedulerHandle::push_batch(handle, &mut seeds);
        } else {
            for task in seeds.drain(..) {
                SchedulerHandle::push(handle, task);
            }
        }
        SchedulerHandle::flush(handle);

        let mut useful = 0u64;
        let mut wasted = 0u64;
        // Limited jobs pay one relaxed fetch-add per task plus a clock read
        // every CHECK_EVERY tasks; unlimited jobs skip the whole block.
        let mut since_check = 0u32;
        #[cfg(feature = "fault-inject")]
        let faults = inner.faults.as_ref();
        let outcome = worker_loop_instrumented(
            handle,
            &gang.detector,
            &mut tally,
            &mut scratch,
            &inner.loop_config,
            LoopControl {
                abort: Some(&gang.aborted),
                cancel: control.as_ref().map(|c| &c.cancel),
            },
            telemetry.as_mut(),
            |task, sink, scratch| {
                #[cfg(feature = "fault-inject")]
                let mut panic_in_push = false;
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = faults {
                    match plan.next_action() {
                        Some(fault::FaultAction::Panic) => {
                            panic!("injected fault: worker panic")
                        }
                        Some(fault::FaultAction::Stall(wait)) => std::thread::sleep(wait),
                        Some(fault::FaultAction::PanicInPush) => panic_in_push = true,
                        None => {}
                    }
                }
                {
                    let mut push = |t: Task| {
                        sink.push(t);
                        #[cfg(feature = "fault-inject")]
                        if panic_in_push {
                            // Fires *after* the follow-up is published —
                            // the mid-scheduler-op unwind path.
                            panic!("injected fault: panic mid scheduler push")
                        }
                    };
                    if job.process(task, &mut push, scratch) {
                        useful += 1;
                    } else {
                        wasted += 1;
                    }
                }
                #[cfg(feature = "fault-inject")]
                if panic_in_push {
                    // The task pushed nothing; fire the claimed budget
                    // anyway so injected counts match observed poisons.
                    panic!("injected fault: panic after task with no push")
                }
                if let Some(ctl) = control.as_deref() {
                    ctl.note_processed();
                    since_check += 1;
                    if since_check >= JobControl::CHECK_EVERY {
                        since_check = 0;
                        ctl.check_deadline();
                    }
                }
            },
        );

        guard.result = Some(WorkerResult {
            executed: outcome.executed,
            scans: outcome.scans,
            useful,
            wasted,
            stats: SchedulerHandle::stats(handle).delta_since(&stats_before),
            telemetry: telemetry.map(WorkerTelemetry::finish),
        });
        drop(guard); // publishes the result and wakes the coordinator
        idle_since = Instant::now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smq_scheduler::{HeapSmq, SmqConfig};
    use std::sync::atomic::AtomicU64;

    /// A toy job: every seed task below `fanout_below` pushes two children;
    /// output = number of processed tasks, tracked in shared state.
    struct FanoutJob {
        seeds: u64,
        fanout_below: u64,
        processed: AtomicU64,
    }

    impl FanoutJob {
        fn new(seeds: u64, fanout_below: u64) -> Self {
            Self {
                seeds,
                fanout_below,
                processed: AtomicU64::new(0),
            }
        }
    }

    impl PoolJob for FanoutJob {
        fn seed_tasks(&self) -> Vec<Task> {
            (0..self.seeds).map(|i| Task::new(i, i)).collect()
        }

        fn process(&self, task: Task, push: &mut dyn FnMut(Task), _scratch: &mut Scratch) -> bool {
            self.processed.fetch_add(1, Ordering::Relaxed);
            if task.key < self.fanout_below {
                push(Task::new(task.key + self.fanout_below, task.value));
                push(Task::new(task.key + 2 * self.fanout_below, task.value));
            }
            true
        }
    }

    fn smq(threads: usize) -> HeapSmq<Task> {
        HeapSmq::new(SmqConfig::default_for_threads(threads).with_seed(7))
    }

    fn partitioned(gangs: usize, gang_size: usize) -> WorkerPool {
        WorkerPool::new_partitioned(
            move |_| smq(gang_size),
            PoolConfig::partitioned(gangs, gang_size),
        )
    }

    #[test]
    fn numa_aligned_snaps_gang_size_to_node_divisors() {
        // 2 nodes × 4 threads; a hint of 3 snaps down to 2 (largest divisor
        // of 4 that is <= 3), giving 4 gangs of 2.
        let cfg = PoolConfig::numa_aligned(Topology::uniform(2, 4), 3);
        assert_eq!(cfg.gang_size, 2);
        assert_eq!(cfg.gangs, 4);
        assert_eq!(cfg.total_threads(), 8);
        // Gangs tile nodes in order, two gangs per node.
        assert_eq!(cfg.node_of_gang(0), 0);
        assert_eq!(cfg.node_of_gang(1), 0);
        assert_eq!(cfg.node_of_gang(2), 1);
        assert_eq!(cfg.node_of_gang(3), 1);
        // A whole-node hint yields one gang per node.
        let cfg = PoolConfig::numa_aligned(Topology::uniform(2, 4), 4);
        assert_eq!(cfg.gang_size, 4);
        assert_eq!(cfg.gangs, 2);
        assert_eq!(cfg.node_of_gang(1), 1);
    }

    #[test]
    #[should_panic(expected = "must divide threads_per_node")]
    fn straddling_gang_rejected() {
        // Gang of 3 across nodes of 4 threads would straddle a boundary.
        let _ = PoolConfig::partitioned(4, 3).with_topology(Topology::uniform(3, 4));
    }

    #[test]
    #[should_panic(expected = "cover the pool's whole fleet")]
    fn topology_fleet_mismatch_rejected() {
        let _ = PoolConfig::partitioned(2, 2).with_topology(Topology::uniform(2, 4));
    }

    #[test]
    fn aligned_pool_hands_each_gang_its_node() {
        let topology = Topology::uniform(2, 2);
        let cfg = PoolConfig::numa_aligned(topology.clone(), 2);
        assert_eq!(cfg.gangs, 2);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let record = Arc::clone(&seen);
        let mut pool = WorkerPool::new_aligned(
            move |gang, node| {
                record.lock().unwrap().push((gang, node));
                HeapSmq::new(
                    SmqConfig::default_for_threads(2)
                        .with_numa_scaled(Topology::single_node(2))
                        .with_seed(7),
                )
            },
            cfg,
        );
        assert_eq!(*seen.lock().unwrap(), vec![(0, 0), (1, 1)]);
        let job = FanoutJob::new(50, 50);
        let out = pool.run_job(&job).unwrap();
        assert_eq!(out.metrics.tasks_executed, 150);
        pool.shutdown();
    }

    /// One FanoutJob replay on a fresh single-worker pool of `scheduler`,
    /// returning its per-job metrics slice.
    fn replay<S: Scheduler<Task> + Send + Sync + 'static>(
        scheduler: S,
        telemetry: TelemetryConfig,
    ) -> JobOutput {
        let pool = WorkerPool::new(scheduler, PoolConfig::new(1).with_telemetry(telemetry));
        pool.run_job(&FanoutJob::new(60, 60)).unwrap()
    }

    #[test]
    fn disabled_telemetry_is_bit_identical_single_thread() {
        // The zero-overhead contract, asserted in its strongest form: even
        // *fully enabled* telemetry must leave every single-thread OpStats
        // counter exactly as the disabled (= uninstrumented) path produces
        // it, because instrumentation only ever reads published snapshots.
        // Deterministic seeds make single-thread replays exact.
        let base = replay(smq(1), TelemetryConfig::disabled());
        let instrumented = replay(smq(1), TelemetryConfig::enabled().with_ring(256));
        assert_eq!(
            base.metrics.per_thread, instrumented.metrics.per_thread,
            "SMQ"
        );
        assert_eq!(
            base.metrics.tasks_executed,
            instrumented.metrics.tasks_executed
        );
        assert!(base.metrics.telemetry.is_none());
        assert!(instrumented.metrics.telemetry.is_some());

        use smq_multiqueue::{MultiQueue, MultiQueueConfig};
        let mq = || MultiQueue::<Task>::new(MultiQueueConfig::classic(1).with_seed(3));
        let base = replay(mq(), TelemetryConfig::disabled());
        let instrumented = replay(mq(), TelemetryConfig::enabled().with_ring(256));
        assert_eq!(
            base.metrics.per_thread, instrumented.metrics.per_thread,
            "MultiQueue"
        );
        assert_eq!(
            base.metrics.tasks_executed,
            instrumented.metrics.tasks_executed
        );
    }

    #[test]
    fn enabled_telemetry_reports_phases_lanes_and_rank_probes() {
        let pool = WorkerPool::new(
            smq(2),
            PoolConfig::new(2).with_telemetry(TelemetryConfig::enabled().with_ring(4096)),
        );
        let mut report = TelemetryReport::new();
        for _ in 0..4 {
            let out = pool.run_job(&FanoutJob::new(400, 400)).unwrap();
            report.merge(out.metrics.telemetry.as_ref().expect("telemetry enabled"));
        }
        // Every worker contributed a lane named after its thread.
        assert_eq!(report.lanes.len(), 2);
        for lane in &report.lanes {
            assert!(lane.name.starts_with("smq-pool-"), "lane {}", lane.name);
            assert!(!lane.events.is_empty());
        }
        // Time was accounted: at least pop + process + the quiescence scan
        // every job ends with (park appears between jobs via idle_since).
        use smq_telemetry::Phase;
        assert!(report.phases.get(Phase::Pop) > 0);
        assert!(report.phases.get(Phase::Process) > 0);
        assert!(report.phases.get(Phase::Scan) > 0);
        assert!(report.phases.get(Phase::Park) > 0);
        // 4 jobs × 1200 tasks probed every 64th pop: samples accumulated.
        assert!(report.rank_errors.count() > 0);
    }

    #[test]
    fn resident_pool_runs_many_jobs_without_respawning() {
        let mut pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        for round in 0..50 {
            let job = FanoutJob::new(100, 100);
            let out = pool.run_job(&job).unwrap();
            assert_eq!(out.metrics.tasks_executed, 300, "round {round}");
            assert_eq!(job.processed.load(Ordering::Relaxed), 300);
            assert_eq!(out.useful_tasks, 300);
            assert_eq!(out.wasted_tasks, 0);
            // Per-job stats deltas: every pushed task popped exactly once.
            assert_eq!(out.metrics.total.pushes, out.metrics.total.pops);
            assert_eq!(out.metrics.total.pops, 300);
        }
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 2, "workers must never respawn");
        assert_eq!(stats.jobs_completed, 50);
        assert_eq!(stats.gangs_poisoned, 0);
        pool.shutdown();
    }

    #[test]
    fn empty_job_terminates() {
        let pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        let job = FanoutJob::new(0, 0);
        let out = pool.run_job(&job).unwrap();
        assert_eq!(out.metrics.tasks_executed, 0);
    }

    #[test]
    fn borrowed_scheduler_scoped_pool() {
        let scheduler = smq(3);
        let executed = WorkerPool::with_borrowed(&scheduler, PoolConfig::new(3), |pool| {
            let job = FanoutJob::new(500, 500);
            let out = pool.run_job(&job).unwrap();
            out.metrics.tasks_executed
        });
        assert_eq!(executed, 1_500);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn mismatched_thread_count_is_rejected() {
        let _pool = WorkerPool::new(smq(2), PoolConfig::new(3));
    }

    #[test]
    #[should_panic(expected = "single-gang")]
    fn multi_gang_config_needs_partitioned_constructor() {
        let _pool = WorkerPool::new(smq(2), PoolConfig::partitioned(2, 1));
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(smq(1), PoolConfig::new(1));
        for _ in 0..10 {
            let job = FanoutJob::new(50, 50);
            assert_eq!(pool.run_job(&job).unwrap().metrics.tasks_executed, 150);
        }
        assert_eq!(pool.stats().threads_spawned, 1);
    }

    #[test]
    fn whole_fleet_job_spans_every_gang() {
        // A whole-fleet job on a partitioned pool splits seeds across all
        // gangs and still processes everything exactly once.
        let pool = partitioned(2, 2);
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.gangs(), 2);
        for _ in 0..20 {
            let job = FanoutJob::new(120, 120);
            let out = pool.run_job(&job).unwrap();
            assert_eq!(out.metrics.tasks_executed, 360);
            assert_eq!(out.metrics.threads, 4);
            assert_eq!(out.metrics.total.pushes, out.metrics.total.pops);
        }
        assert_eq!(pool.stats().threads_spawned, 4);
        assert_eq!(pool.stats().jobs_completed, 20);
    }

    #[test]
    fn concurrent_single_gang_jobs_run_in_parallel() {
        // Two jobs, each claiming one gang of a two-gang pool, must be able
        // to be in flight simultaneously: job A holds its gang hostage
        // until job B has demonstrably started processing.
        use std::sync::atomic::AtomicBool;

        struct GateJob {
            // Set by the partner job; this job spins until it is true.
            partner_started: Arc<AtomicBool>,
            // This job sets it as soon as it processes its first task.
            started: Arc<AtomicBool>,
        }

        impl PoolJob for GateJob {
            fn seed_tasks(&self) -> Vec<Task> {
                vec![Task::new(1, 1)]
            }

            fn process(&self, _t: Task, _push: &mut dyn FnMut(Task), _s: &mut Scratch) -> bool {
                self.started.store(true, Ordering::Release);
                while !self.partner_started.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                true
            }
        }

        let pool = partitioned(2, 1);
        let a = Arc::new(AtomicBool::new(false));
        let b = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            let pool = &pool;
            let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            scope.spawn(move || {
                pool.run_job_on(
                    &GateJob {
                        partner_started: b1,
                        started: a1,
                    },
                    1,
                )
                .unwrap();
            });
            scope.spawn(move || {
                pool.run_job_on(
                    &GateJob {
                        partner_started: a2,
                        started: b2,
                    },
                    1,
                )
                .unwrap();
            });
        });
        // If jobs were serialized, each would spin forever on its partner;
        // reaching this line proves two jobs were in flight concurrently.
        assert_eq!(pool.stats().jobs_completed, 2);
    }

    #[test]
    fn gang_claims_are_capped_to_the_fleet() {
        let pool = partitioned(2, 1);
        // Asking for more gangs than exist claims what is there.
        let out = pool.run_job_on(&FanoutJob::new(40, 40), 64).unwrap();
        assert_eq!(out.metrics.tasks_executed, 120);
        assert_eq!(out.metrics.threads, 2);
    }

    /// A job that panics on one specific task.
    struct PanickingJob;

    impl PoolJob for PanickingJob {
        fn seed_tasks(&self) -> Vec<Task> {
            (0..64u64).map(|i| Task::new(i, i)).collect()
        }

        fn process(&self, task: Task, _push: &mut dyn FnMut(Task), _s: &mut Scratch) -> bool {
            assert!(task.key != 17, "intentional job panic");
            true
        }
    }

    #[test]
    fn panicking_job_loses_the_job_instead_of_deadlocking() {
        // The regression this guards: on a multi-worker pool, a panicking
        // task used to leave the detector permanently unbalanced, so the
        // surviving worker spun forever and `run_job` never returned.
        let pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        assert_eq!(pool.run_job(&PanickingJob).map(|_| ()), Err(JobError::Lost));
        assert_eq!(pool.stats().gangs_poisoned, 1);
    }

    #[test]
    fn panic_poisons_one_gang_and_the_rest_keep_serving() {
        // Never-respawn keeps the historic retire-forever behaviour so the
        // test can observe the degraded one-gang pool.
        let pool = WorkerPool::new_partitioned(
            move |_| smq(1),
            PoolConfig::partitioned(2, 1).with_respawn(RespawnPolicy::Never),
        );
        assert_eq!(
            pool.run_job_on(&PanickingJob, 1).map(|_| ()),
            Err(JobError::Lost)
        );
        assert_eq!(pool.stats().gangs_poisoned, 1);
        assert_eq!(pool.stats().gangs_respawned, 0);
        assert_eq!(pool.live_gangs(), 1);
        // The surviving gang still executes jobs correctly.
        for _ in 0..5 {
            let out = pool.run_job(&FanoutJob::new(30, 30)).unwrap();
            assert_eq!(out.metrics.tasks_executed, 90);
            assert_eq!(out.metrics.threads, 1, "only the live gang participates");
        }
        assert_eq!(pool.stats().jobs_completed, 5);
    }

    #[test]
    fn fully_poisoned_pool_rejects_jobs_with_no_capacity() {
        let pool = WorkerPool::new_partitioned(
            move |_| smq(1),
            PoolConfig::partitioned(1, 1).with_respawn(RespawnPolicy::Never),
        );
        assert_eq!(pool.run_job(&PanickingJob).map(|_| ()), Err(JobError::Lost));
        assert_eq!(pool.live_gangs(), 0);
        // Nothing can serve the job, and nothing ever will: a typed error,
        // not a panic, and it stays that way for every later call.
        for _ in 0..3 {
            assert_eq!(
                pool.run_job(&FanoutJob::new(1, 0)).map(|_| ()),
                Err(JobError::NoCapacity)
            );
        }
    }

    #[test]
    fn poisoned_gang_respawns_on_next_claim() {
        // Default policy (Lazy) on a factory pool: the panic poisons gang,
        // the next job's claim rebuilds it, and capacity is back to full.
        let pool = partitioned(2, 1);
        assert_eq!(
            pool.run_job_on(&PanickingJob, 1).map(|_| ()),
            Err(JobError::Lost)
        );
        // The next whole-fleet job forces a claim, which respawns first —
        // so it runs on BOTH gangs again.
        let out = pool.run_job(&FanoutJob::new(40, 40)).unwrap();
        assert_eq!(out.metrics.threads, 2, "respawned gang participates");
        assert_eq!(out.metrics.tasks_executed, 120);
        assert_eq!(pool.live_gangs(), 2);
        let stats = pool.stats();
        assert_eq!(stats.gangs_poisoned, 1);
        assert_eq!(stats.gangs_respawned, 1);
        assert_eq!(
            stats.threads_spawned, 3,
            "2 at construction + 1 for the respawned gang"
        );
    }

    #[test]
    fn eager_respawn_restores_capacity_before_the_next_claim() {
        let pool = WorkerPool::new_partitioned(
            move |_| smq(1),
            PoolConfig::partitioned(2, 1).with_respawn(RespawnPolicy::Eager),
        );
        assert_eq!(
            pool.run_job_on(&PanickingJob, 1).map(|_| ()),
            Err(JobError::Lost)
        );
        // No claim in between: the release of the poisoned claim rebuilt it.
        assert_eq!(pool.live_gangs(), 2);
        assert_eq!(pool.stats().gangs_respawned, 1);
        let out = pool.run_job(&FanoutJob::new(40, 40)).unwrap();
        assert_eq!(out.metrics.threads, 2);
    }

    #[test]
    fn respawn_dead_forces_recovery_on_lazy_pools() {
        let pool = partitioned(2, 1);
        assert_eq!(
            pool.run_job_on(&PanickingJob, 1).map(|_| ()),
            Err(JobError::Lost)
        );
        assert_eq!(pool.live_gangs(), 1);
        assert_eq!(pool.respawn_dead(), 1);
        assert_eq!(pool.live_gangs(), 2);
        assert_eq!(pool.respawn_dead(), 0, "nothing left to rebuild");
        assert_eq!(pool.stats().gangs_respawned, 1);
    }

    #[test]
    fn repeated_panics_keep_respawning_the_same_slot() {
        let pool = partitioned(2, 1);
        for round in 1..=4u64 {
            assert_eq!(
                pool.run_job_on(&PanickingJob, 1).map(|_| ()),
                Err(JobError::Lost),
                "round {round}"
            );
            let out = pool.run_job(&FanoutJob::new(20, 20)).unwrap();
            assert_eq!(out.metrics.threads, 2, "round {round}");
            assert_eq!(pool.stats().gangs_poisoned, round);
            assert_eq!(pool.stats().gangs_respawned, round);
        }
        assert_eq!(pool.live_gangs(), 2);
    }

    /// An endless chain: every processed task pushes a successor, so the
    /// job can only ever end by being cancelled.
    struct EndlessJob {
        /// Sleep per task, to give wall-clock deadlines something to trip.
        nap: std::time::Duration,
    }

    impl PoolJob for EndlessJob {
        fn seed_tasks(&self) -> Vec<Task> {
            vec![Task::new(0, 0)]
        }

        fn process(&self, task: Task, push: &mut dyn FnMut(Task), _s: &mut Scratch) -> bool {
            if !self.nap.is_zero() {
                std::thread::sleep(self.nap);
            }
            push(Task::new(task.key + 1, 0));
            true
        }
    }

    #[test]
    fn deadline_cancels_the_job_and_keeps_the_gang_usable() {
        let pool = WorkerPool::new(smq(1), PoolConfig::new(1));
        let spec = JobSpec {
            deadline: Some(Instant::now() + std::time::Duration::from_millis(20)),
            budget: None,
        };
        let endless = EndlessJob {
            nap: std::time::Duration::from_millis(1),
        };
        assert_eq!(
            pool.run_job_with(&endless, 1, &spec).map(|_| ()),
            Err(JobError::DeadlineExceeded)
        );
        // Cancelled, not poisoned: the gang drained cleanly and serves the
        // next (unlimited) job exactly.
        assert_eq!(pool.stats().gangs_poisoned, 0);
        assert_eq!(pool.live_gangs(), 1);
        let out = pool.run_job(&FanoutJob::new(30, 30)).unwrap();
        assert_eq!(out.metrics.tasks_executed, 90);
    }

    #[test]
    fn already_expired_deadline_sheds_without_running() {
        let pool = WorkerPool::new(smq(1), PoolConfig::new(1));
        let job = FanoutJob::new(10, 10);
        let spec = JobSpec {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            budget: None,
        };
        assert_eq!(
            pool.run_job_with(&job, 1, &spec).map(|_| ()),
            Err(JobError::DeadlineExceeded)
        );
        assert_eq!(
            job.processed.load(Ordering::Relaxed),
            0,
            "shed before any task ran"
        );
    }

    #[test]
    fn budget_cancels_the_job_after_the_configured_tasks() {
        let pool = WorkerPool::new(smq(1), PoolConfig::new(1));
        let spec = JobSpec {
            deadline: None,
            budget: Some(100),
        };
        let endless = EndlessJob {
            nap: std::time::Duration::ZERO,
        };
        assert_eq!(
            pool.run_job_with(&endless, 1, &spec).map(|_| ()),
            Err(JobError::BudgetExceeded)
        );
        assert_eq!(pool.stats().gangs_poisoned, 0);
        // The pool is immediately reusable.
        let out = pool.run_job(&FanoutJob::new(30, 30)).unwrap();
        assert_eq!(out.metrics.tasks_executed, 90);
    }

    #[test]
    fn handles_are_created_once_per_worker_across_many_jobs() {
        let pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        for _ in 0..100 {
            pool.run_job(&FanoutJob::new(20, 20)).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.jobs_completed, 100);
        assert_eq!(
            stats.handles_created, 2,
            "a worker creates its scheduler handle once, before its first \
             park — never per job"
        );
    }

    #[test]
    fn batched_pool_runs_jobs_correctly() {
        let pool = WorkerPool::new(smq(2), PoolConfig::new(2).with_batch(8));
        for _ in 0..10 {
            let job = FanoutJob::new(100, 100);
            let out = pool.run_job(&job).unwrap();
            assert_eq!(out.metrics.tasks_executed, 300);
            assert_eq!(out.metrics.total.pushes, out.metrics.total.pops);
            // The native SMQ batch paths actually ran.
            assert!(out.metrics.total.batch_flushes > 0);
        }
    }

    #[test]
    fn mixed_pool_runs_different_scheduler_types_per_gang() {
        use smq_multiqueue::{MultiQueue, MultiQueueConfig};
        // Gang 0: SMQ; gang 1: classic Multi-Queue — behind one pool.
        let pool = WorkerPool::new_mixed(
            |g| -> Box<dyn DynScheduler + Send + Sync> {
                if g == 0 {
                    Box::new(smq(1))
                } else {
                    Box::new(MultiQueue::<Task>::new(
                        MultiQueueConfig::classic(1).with_seed(5),
                    ))
                }
            },
            PoolConfig::partitioned(2, 1).with_batch(4),
        );
        assert_eq!(pool.gangs(), 2);
        for _ in 0..5 {
            let job = FanoutJob::new(60, 60);
            let out = pool.run_job(&job).unwrap();
            assert_eq!(out.metrics.tasks_executed, 180);
            assert_eq!(out.metrics.total.pushes, out.metrics.total.pops);
        }
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 2);
        assert_eq!(stats.handles_created, 2);
        assert_eq!(stats.jobs_completed, 5);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        pool.run_job(&FanoutJob::new(10, 10)).unwrap();
        pool.shutdown();
        pool.shutdown();
        // Drop after explicit shutdown must not double-join.
    }

    #[test]
    fn shutdown_joins_partitioned_fleet() {
        let mut pool = partitioned(3, 2);
        pool.run_job_on(&FanoutJob::new(10, 10), 2).unwrap();
        pool.shutdown();
        assert_eq!(pool.stats().jobs_completed, 1);
    }
}
