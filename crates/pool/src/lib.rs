//! A *resident* worker pool for the relaxed priority schedulers.
//!
//! The one-shot executor (`smq_runtime::run`) spawns and joins a fresh
//! thread fleet for every invocation, so thread-spawn latency and cold
//! scheduler state dominate any short job.  A [`WorkerPool`] instead spawns
//! its fleet **once**, parks the workers on a condvar between jobs, and
//! executes a stream of jobs against one long-lived scheduler: each job
//! seeds the scheduler, runs the shared worker loop
//! (`smq_runtime::executor::worker_loop`) to quiescence under a fresh
//! termination-detection *generation*, and hands back per-job
//! [`RunMetrics`].  Generations (see `smq_runtime::termination`) are what
//! make detector reuse sound: counters are zeroed between jobs while every
//! worker is parked, scans that straddle a generation boundary invalidate
//! themselves, and a tally leaked across jobs asserts in debug builds.
//!
//! On top of the pool, [`JobService`] adds a bounded multi-producer
//! submission queue with FIFO admission, completion tickets carrying
//! queue-wait and service-time measurements, and graceful shutdown — the
//! front door of a routing/analytics service built on these schedulers.
//!
//! # Scheduler ownership
//!
//! Worker threads are OS threads, so the scheduler they share must outlive
//! them.  Two constructions guarantee that:
//!
//! * [`WorkerPool::new`] takes the scheduler **by value** and keeps it
//!   alive until the workers are joined — the resident-service mode;
//! * [`WorkerPool::with_borrowed`] runs a closure against a pool built on a
//!   *borrowed* scheduler and joins every worker before returning — the
//!   scoped mode backing `smq_algos::engine::run_parallel`'s transient
//!   pools.
//!
//! Both funnel into one erased representation (a raw pointer to a small
//! object-safe scheduler vtable); the join-before-invalidation discipline
//! is what makes the erasure sound, and it is enforced structurally (the
//! scoped constructor joins on every path, including unwinds, and the
//! owning constructor joins in `Drop` before the box is released).

#![warn(missing_docs)]

pub mod service;

pub use service::{JobCompletion, JobService, JobTicket, ServiceConfig, ServiceStats, SubmitError};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

use smq_core::{OpStats, Scheduler, SchedulerHandle, Task};
use smq_runtime::executor::{worker_loop, WorkerLoopConfig};
use smq_runtime::{RunMetrics, Scratch, TerminationDetector};

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Number of resident worker threads.  Must match the scheduler's
    /// configured thread count.
    pub threads: usize,
    /// The per-worker loop knobs (backoff, scan gating) — the same
    /// [`WorkerLoopConfig`] the one-shot executor uses, so defaults live in
    /// one place.
    pub worker: WorkerLoopConfig,
}

impl PoolConfig {
    /// A configuration with `threads` workers and default backoff/gating.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            worker: WorkerLoopConfig::default(),
        }
    }
}

/// One job executable on a [`WorkerPool`]: the object-safe core of
/// `smq_algos::engine::DecreaseKeyWorkload`.
///
/// The contract is the same as the engine's: `process` must be correct for
/// any order of task execution, and the job's shared state must make stale
/// tasks detectable (return `false`).
pub trait PoolJob: Sync {
    /// The tasks seeding this job.
    fn seed_tasks(&self) -> Vec<Task>;

    /// Executes one task, pushing follow-up tasks through `push`.  Returns
    /// `true` when the task advanced the job (was *useful*), `false` when
    /// it was stale on arrival (*wasted*).
    fn process(&self, task: Task, push: &mut dyn FnMut(Task), scratch: &mut Scratch) -> bool;
}

/// Accounting from one pool job.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Wall-clock and scheduler-operation metrics, carved per-job out of
    /// the persistent worker handles via `OpStats::delta_since`.
    pub metrics: RunMetrics,
    /// Tasks whose execution advanced the job.
    pub useful_tasks: u64,
    /// Stale tasks (wasted work caused by priority relaxation).
    pub wasted_tasks: u64,
}

/// Point-in-time pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads spawned over the pool's entire lifetime.  Stays equal
    /// to the configured thread count — workers are never respawned; this
    /// is the metric service tests assert "zero thread respawns" with.
    pub threads_spawned: u64,
    /// Jobs fully executed so far.
    pub jobs_completed: u64,
}

// ---------------------------------------------------------------------------
// Scheduler erasure: a minimal object-safe mirror of `Scheduler<Task>`, so
// the pool (and its spawned threads) need no generic scheduler parameter.
// ---------------------------------------------------------------------------

trait DynScheduler: Sync {
    fn dyn_handle(&self, tid: usize) -> Box<dyn DynHandle + '_>;
    fn num_threads(&self) -> usize;
}

trait DynHandle {
    fn push(&mut self, task: Task);
    fn pop(&mut self) -> Option<Task>;
    fn flush(&mut self);
    fn stats(&self) -> OpStats;
}

impl<S: Scheduler<Task>> DynScheduler for S {
    fn dyn_handle(&self, tid: usize) -> Box<dyn DynHandle + '_> {
        Box::new(Scheduler::handle(self, tid))
    }

    fn num_threads(&self) -> usize {
        Scheduler::num_threads(self)
    }
}

impl<H: SchedulerHandle<Task>> DynHandle for H {
    fn push(&mut self, task: Task) {
        SchedulerHandle::push(self, task);
    }

    fn pop(&mut self) -> Option<Task> {
        SchedulerHandle::pop(self)
    }

    fn flush(&mut self) {
        SchedulerHandle::flush(self);
    }

    fn stats(&self) -> OpStats {
        SchedulerHandle::stats(self)
    }
}

/// `SchedulerHandle` for the boxed erased handle, so the shared
/// `worker_loop` (generic over `H: SchedulerHandle<T>`) drives it directly.
impl SchedulerHandle<Task> for Box<dyn DynHandle + '_> {
    #[inline]
    fn push(&mut self, task: Task) {
        (**self).push(task);
    }

    #[inline]
    fn pop(&mut self) -> Option<Task> {
        (**self).pop()
    }

    #[inline]
    fn flush(&mut self) {
        (**self).flush();
    }

    #[inline]
    fn stats(&self) -> OpStats {
        (**self).stats()
    }
}

/// Lifetime-erased pointer to the pool's scheduler.
///
/// # Safety invariant
/// The pointee must stay alive and unmoved until every worker thread has
/// been joined.  `WorkerPool::new` guarantees this by boxing the scheduler
/// and joining in `Drop` before the box is released;
/// `WorkerPool::with_borrowed` by joining before the borrow ends.
#[derive(Clone, Copy)]
struct SchedulerRef(*const (dyn DynScheduler + 'static));
// SAFETY: the pointee is `Sync` (required by `Scheduler`) and the pointer
// is only dereferenced while the invariant above holds.
unsafe impl Send for SchedulerRef {}
unsafe impl Sync for SchedulerRef {}

/// Lifetime-erased pointer to the job currently being executed.
///
/// # Safety invariant
/// Valid only while `JobState::remaining > 0` for the publishing job:
/// `run_job` blocks until every worker has finished (or abandoned) the job
/// before its `&dyn PoolJob` borrow ends.
#[derive(Clone, Copy)]
struct JobRef(*const (dyn PoolJob + 'static));
// SAFETY: the pointee is `Sync` and only dereferenced under the invariant.
unsafe impl Send for JobRef {}
unsafe impl Sync for JobRef {}

/// What one worker reports back after finishing its share of a job.
struct WorkerResult {
    executed: u64,
    scans: u64,
    useful: u64,
    wasted: u64,
    stats: OpStats,
}

/// The job hand-off slot workers park on.
struct JobState {
    /// Monotone job sequence number; workers track the last one they ran.
    seq: u64,
    /// The job being executed, `None` while the pool is idle.
    job: Option<JobRef>,
    /// Per-worker seed slices for the current job, taken once each.
    seeds: Vec<Option<Vec<Task>>>,
    /// Workers still running the current job.
    remaining: usize,
    /// Per-worker results of the current job.
    results: Vec<Option<WorkerResult>>,
    /// Set when a worker panicked mid-job; the pool refuses further jobs.
    poisoned: bool,
    /// Set once; parked workers exit instead of waiting for the next job.
    shutdown: bool,
}

struct Inner {
    threads: usize,
    scheduler: SchedulerRef,
    detector: TerminationDetector,
    loop_config: WorkerLoopConfig,
    state: Mutex<JobState>,
    /// Workers wait here for `seq` to advance (or `shutdown`).
    job_ready: Condvar,
    /// The coordinator waits here for `remaining` to hit zero.
    job_done: Condvar,
    /// Set when a worker dies mid-job.  A dead worker's thread-local
    /// queues can strand tasks nobody else may serve, so quiescence would
    /// never be reached — survivors poll this in the worker loop's
    /// empty-pop path and bail out instead of spinning forever.
    aborted: AtomicBool,
}

/// Ignore `std` mutex poisoning: the pool has its own `poisoned` flag with
/// precise semantics, and state reads are safe after a panic.
fn lock(state: &Mutex<JobState>) -> MutexGuard<'_, JobState> {
    state.lock().unwrap_or_else(|e| e.into_inner())
}

/// A resident fleet of worker threads executing a stream of [`PoolJob`]s
/// against one long-lived scheduler.
///
/// Workers are spawned once at construction and parked between jobs;
/// [`run_job`](Self::run_job) wakes them, runs the job to quiescence, and
/// returns its metrics.  Jobs are serialized (one at a time) — queueing and
/// multi-client admission live in [`JobService`].
pub struct WorkerPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
    /// Serializes `run_job` callers.
    admission: Mutex<()>,
    jobs_completed: AtomicU64,
    threads_spawned: u64,
    /// Keeps an owned scheduler alive; dropped only after `Drop` joined the
    /// workers (field drop runs after `drop(&mut self)`).
    _owned_scheduler: Option<Box<dyn std::any::Any + Send + Sync>>,
}

impl WorkerPool {
    /// Spawns a resident pool owning `scheduler`.
    ///
    /// The scheduler lives as long as the pool; this is the constructor for
    /// long-lived services (see [`JobService`]).
    pub fn new<S>(scheduler: S, config: PoolConfig) -> WorkerPool
    where
        S: Scheduler<Task> + Send + Sync + 'static,
    {
        let boxed: Box<S> = Box::new(scheduler);
        let erased: &(dyn DynScheduler + 'static) = &*boxed;
        let ptr: *const (dyn DynScheduler + 'static) = erased;
        Self::spawn(SchedulerRef(ptr), Some(boxed), config)
    }

    /// Runs `f` against a transient pool built on a *borrowed* scheduler,
    /// joining every worker before returning (also on unwind).
    ///
    /// This is the scoped mode behind one-shot `engine::run_parallel` calls:
    /// same worker-loop semantics as the resident pool, without requiring
    /// `'static` ownership of the scheduler.
    pub fn with_borrowed<S, R>(
        scheduler: &S,
        config: PoolConfig,
        f: impl FnOnce(&WorkerPool) -> R,
    ) -> R
    where
        S: Scheduler<Task>,
    {
        let erased: &dyn DynScheduler = scheduler;
        // SAFETY: the erased pointer outlives every dereference because the
        // pool joins all workers before this function returns: on the happy
        // path via the explicit `shutdown`, on unwind via `Drop`.  `f` only
        // receives `&WorkerPool`, so the pool cannot escape or be leaked.
        let ptr: *const (dyn DynScheduler + 'static) =
            unsafe { std::mem::transmute(erased as *const dyn DynScheduler) };
        let mut pool = Self::spawn(SchedulerRef(ptr), None, config);
        let result = f(&pool);
        pool.shutdown();
        result
    }

    fn spawn(
        scheduler: SchedulerRef,
        keeper: Option<Box<dyn std::any::Any + Send + Sync>>,
        config: PoolConfig,
    ) -> WorkerPool {
        let threads = config.threads;
        assert!(threads >= 1, "need at least one worker thread");
        // SAFETY: the pointee is alive for the whole constructor.
        let scheduler_threads = unsafe { (*scheduler.0).num_threads() };
        assert_eq!(
            threads, scheduler_threads,
            "pool thread count must match the scheduler's configuration"
        );

        let inner = Arc::new(Inner {
            threads,
            scheduler,
            detector: TerminationDetector::new(threads),
            loop_config: config.worker.clone(),
            state: Mutex::new(JobState {
                seq: 0,
                job: None,
                seeds: Vec::new(),
                remaining: 0,
                results: (0..threads).map(|_| None).collect(),
                poisoned: false,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            aborted: AtomicBool::new(false),
        });

        let mut workers = Vec::with_capacity(threads);
        for tid in 0..threads {
            let worker_inner = Arc::clone(&inner);
            match std::thread::Builder::new()
                .name(format!("smq-pool-{tid}"))
                .spawn(move || worker_main(&worker_inner, tid))
            {
                Ok(handle) => workers.push(handle),
                Err(error) => {
                    // Join the partial fleet before unwinding: without this,
                    // already-running workers would outlive the (possibly
                    // borrowed) erased scheduler pointer — a use-after-free,
                    // not just a leak.
                    {
                        let mut st = lock(&inner.state);
                        st.shutdown = true;
                        inner.job_ready.notify_all();
                    }
                    for worker in workers {
                        let _ = worker.join();
                    }
                    panic!("failed to spawn pool worker {tid}: {error}");
                }
            }
        }

        WorkerPool {
            inner,
            workers,
            admission: Mutex::new(()),
            jobs_completed: AtomicU64::new(0),
            threads_spawned: threads as u64,
            _owned_scheduler: keeper,
        }
    }

    /// Number of resident worker threads.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Lifetime counters: threads spawned (never grows after construction —
    /// workers are parked between jobs, not respawned) and jobs completed.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            threads_spawned: self.threads_spawned,
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
        }
    }

    /// Executes one job on the resident fleet and returns its accounting.
    ///
    /// Blocks until the job is quiescent.  Concurrent callers are admitted
    /// one at a time (FIFO per the admission mutex); a panicking job
    /// poisons the pool and `run_job` panics for it and every later caller.
    pub fn run_job(&self, job: &dyn PoolJob) -> JobOutput {
        let _admission = self.admission.lock().unwrap_or_else(|e| e.into_inner());
        let threads = self.inner.threads;

        // Split the seeds round-robin so each worker seeds its own queues,
        // exactly like the one-shot executor.
        let mut seeds: Vec<Vec<Task>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, task) in job.seed_tasks().into_iter().enumerate() {
            seeds[i % threads].push(task);
        }

        // Fresh termination generation for this job: all workers are parked
        // (the previous job fully completed before `run_job` returned), so
        // zeroing the counters races nothing; stale tallies from the
        // previous job cannot leak in (they assert in debug builds, and a
        // scan spanning the reset invalidates itself).
        self.inner.detector.advance_generation();
        for (tid, seed) in seeds.iter().enumerate() {
            self.inner.detector.preload(tid, seed.len() as u64);
        }

        // SAFETY: `run_job` does not return before every worker finished
        // (or abandoned) this job, so the erased borrow outlives all uses.
        let job_ref = JobRef(unsafe {
            std::mem::transmute::<*const dyn PoolJob, *const (dyn PoolJob + 'static)>(
                job as *const dyn PoolJob,
            )
        });

        let start = Instant::now();
        let results: Vec<WorkerResult> = {
            let mut st = lock(&self.inner.state);
            assert!(
                !st.poisoned,
                "worker pool poisoned by a panic in an earlier job"
            );
            assert!(!st.shutdown, "worker pool is shut down");
            st.seq += 1;
            st.job = Some(job_ref);
            st.seeds = seeds.into_iter().map(Some).collect();
            st.remaining = threads;
            st.results = (0..threads).map(|_| None).collect();
            self.inner.job_ready.notify_all();
            while st.remaining > 0 {
                st = self
                    .inner
                    .job_done
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            assert!(!st.poisoned, "a worker panicked while executing a pool job");
            st.results
                .iter_mut()
                .map(|slot| slot.take().expect("worker finished without a result"))
                .collect()
        };
        let elapsed = start.elapsed();
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);

        let per_thread: Vec<OpStats> = results.iter().map(|r| r.stats.clone()).collect();
        let total = OpStats::merged(per_thread.iter());
        JobOutput {
            metrics: RunMetrics {
                elapsed,
                threads,
                tasks_executed: results.iter().map(|r| r.executed).sum(),
                quiescence_scans: results.iter().map(|r| r.scans).sum(),
                per_thread,
                total,
            },
            useful_tasks: results.iter().map(|r| r.useful).sum(),
            wasted_tasks: results.iter().map(|r| r.wasted).sum(),
        }
    }

    /// Stops accepting jobs and joins every worker thread.  Called
    /// automatically on drop; idempotent.
    pub fn shutdown(&mut self) {
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
            self.inner.job_ready.notify_all();
        }
        for worker in self.workers.drain(..) {
            // A worker that panicked mid-job reports `Err` here; the pool is
            // already marked poisoned, so just reap the thread.
            let _ = worker.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        // `_owned_scheduler` drops after this body: workers are joined
        // first, so no erased pointer can dangle.
    }
}

/// Decrements `remaining` when the worker leaves the job for any reason; a
/// missing result means the job's `process` panicked, which poisons the
/// pool instead of deadlocking the coordinator.  (The other half of the
/// no-deadlock guarantee lives in `worker_loop`: the in-flight task's
/// completion is recorded even on unwind, so surviving workers can still
/// reach quiescence and publish their results.)
struct CompletionGuard<'a> {
    inner: &'a Inner,
    tid: usize,
    result: Option<WorkerResult>,
}

impl Drop for CompletionGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock(&self.inner.state);
        if self.result.is_none() {
            st.poisoned = true;
            // Tell surviving workers to stop waiting for a quiescence that
            // may now be unreachable (tasks stranded in our local queues).
            self.inner.aborted.store(true, Ordering::Release);
        }
        st.results[self.tid] = self.result.take();
        st.remaining -= 1;
        if st.remaining == 0 {
            st.job = None;
            self.inner.job_done.notify_all();
        }
    }
}

fn worker_main(inner: &Arc<Inner>, tid: usize) {
    // SAFETY: the pool joins this thread before invalidating the pointer
    // (see `SchedulerRef`).
    let scheduler: &dyn DynScheduler = unsafe { &*inner.scheduler.0 };
    // One handle and one scratch arena for the thread's whole life: local
    // queues, insert buffers, and scratch capacity all persist across jobs.
    let mut handle = scheduler.dyn_handle(tid);
    let mut scratch = Scratch::new();
    let mut last_seq = 0u64;

    loop {
        // Park until a new job (or shutdown) arrives.
        let (job_ref, seeds, seq) = {
            let mut st = lock(&inner.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq > last_seq {
                    let job_ref = st.job.expect("job published without a body");
                    let seeds = st.seeds[tid].take().expect("seed slice taken twice");
                    break (job_ref, seeds, st.seq);
                }
                st = inner.job_ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        last_seq = seq;

        let mut guard = CompletionGuard {
            inner,
            tid,
            result: None,
        };

        // SAFETY: valid until this worker's guard decrements `remaining`
        // (see `JobRef`).
        let job: &dyn PoolJob = unsafe { &*job_ref.0 };
        // `Box<dyn DynHandle>` sees both trait surfaces; pin the calls to
        // the `SchedulerHandle` view the worker loop uses.
        let stats_before = SchedulerHandle::stats(&handle);
        let mut tally = inner.detector.tally(tid);
        // Seeds were pre-credited by the coordinator; pushing them needs no
        // recording.
        for task in seeds {
            SchedulerHandle::push(&mut handle, task);
        }
        SchedulerHandle::flush(&mut handle);

        let mut useful = 0u64;
        let mut wasted = 0u64;
        let outcome = worker_loop(
            &mut handle,
            &inner.detector,
            &mut tally,
            &mut scratch,
            &inner.loop_config,
            Some(&inner.aborted),
            |task, sink, scratch| {
                let mut push = |t: Task| sink.push(t);
                if job.process(task, &mut push, scratch) {
                    useful += 1;
                } else {
                    wasted += 1;
                }
            },
        );

        guard.result = Some(WorkerResult {
            executed: outcome.executed,
            scans: outcome.scans,
            useful,
            wasted,
            stats: SchedulerHandle::stats(&handle).delta_since(&stats_before),
        });
        drop(guard); // publishes the result and wakes the coordinator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smq_scheduler::{HeapSmq, SmqConfig};
    use std::sync::atomic::AtomicU64;

    /// A toy job: every seed task below `fanout_below` pushes two children;
    /// output = number of processed tasks, tracked in shared state.
    struct FanoutJob {
        seeds: u64,
        fanout_below: u64,
        processed: AtomicU64,
    }

    impl FanoutJob {
        fn new(seeds: u64, fanout_below: u64) -> Self {
            Self {
                seeds,
                fanout_below,
                processed: AtomicU64::new(0),
            }
        }
    }

    impl PoolJob for FanoutJob {
        fn seed_tasks(&self) -> Vec<Task> {
            (0..self.seeds).map(|i| Task::new(i, i)).collect()
        }

        fn process(&self, task: Task, push: &mut dyn FnMut(Task), _scratch: &mut Scratch) -> bool {
            self.processed.fetch_add(1, Ordering::Relaxed);
            if task.key < self.fanout_below {
                push(Task::new(task.key + self.fanout_below, task.value));
                push(Task::new(task.key + 2 * self.fanout_below, task.value));
            }
            true
        }
    }

    fn smq(threads: usize) -> HeapSmq<Task> {
        HeapSmq::new(SmqConfig::default_for_threads(threads).with_seed(7))
    }

    #[test]
    fn resident_pool_runs_many_jobs_without_respawning() {
        let mut pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        for round in 0..50 {
            let job = FanoutJob::new(100, 100);
            let out = pool.run_job(&job);
            assert_eq!(out.metrics.tasks_executed, 300, "round {round}");
            assert_eq!(job.processed.load(Ordering::Relaxed), 300);
            assert_eq!(out.useful_tasks, 300);
            assert_eq!(out.wasted_tasks, 0);
            // Per-job stats deltas: every pushed task popped exactly once.
            assert_eq!(out.metrics.total.pushes, out.metrics.total.pops);
            assert_eq!(out.metrics.total.pops, 300);
        }
        let stats = pool.stats();
        assert_eq!(stats.threads_spawned, 2, "workers must never respawn");
        assert_eq!(stats.jobs_completed, 50);
        pool.shutdown();
    }

    #[test]
    fn empty_job_terminates() {
        let pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        let job = FanoutJob::new(0, 0);
        let out = pool.run_job(&job);
        assert_eq!(out.metrics.tasks_executed, 0);
    }

    #[test]
    fn borrowed_scheduler_scoped_pool() {
        let scheduler = smq(3);
        let executed = WorkerPool::with_borrowed(&scheduler, PoolConfig::new(3), |pool| {
            let job = FanoutJob::new(500, 500);
            let out = pool.run_job(&job);
            out.metrics.tasks_executed
        });
        assert_eq!(executed, 1_500);
    }

    #[test]
    #[should_panic(expected = "thread count")]
    fn mismatched_thread_count_is_rejected() {
        let _pool = WorkerPool::new(smq(2), PoolConfig::new(3));
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(smq(1), PoolConfig::new(1));
        for _ in 0..10 {
            let job = FanoutJob::new(50, 50);
            assert_eq!(pool.run_job(&job).metrics.tasks_executed, 150);
        }
        assert_eq!(pool.stats().threads_spawned, 1);
    }

    /// A job that panics on one specific task.
    struct PanickingJob;

    impl PoolJob for PanickingJob {
        fn seed_tasks(&self) -> Vec<Task> {
            (0..64u64).map(|i| Task::new(i, i)).collect()
        }

        fn process(&self, task: Task, _push: &mut dyn FnMut(Task), _s: &mut Scratch) -> bool {
            assert!(task.key != 17, "intentional job panic");
            true
        }
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn panicking_job_poisons_the_pool_instead_of_deadlocking() {
        // The regression this guards: on a multi-worker pool, a panicking
        // task used to leave the detector permanently unbalanced, so the
        // surviving worker spun forever and `run_job` never returned.
        let pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        pool.run_job(&PanickingJob);
    }

    #[test]
    fn shutdown_is_idempotent_and_drop_safe() {
        let mut pool = WorkerPool::new(smq(2), PoolConfig::new(2));
        pool.run_job(&FanoutJob::new(10, 10));
        pool.shutdown();
        pool.shutdown();
        // Drop after explicit shutdown must not double-join.
    }
}
