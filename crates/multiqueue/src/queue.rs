//! The Multi-Queue scheduler (Listing 1) with configurable insert/delete
//! policies, optional NUMA-aware sampling, and cached top-key snapshots.
//!
//! # Cached top-key snapshots
//!
//! The classic two-choice delete locks **both** sampled queues before
//! comparing their tops, paying two lock acquisitions per pop.  Here every
//! sub-queue additionally publishes the key of its current minimum in a
//! cache-padded `AtomicU64` (`u64::MAX` when empty), maintained while the
//! queue's lock is held.  The delete compares the two snapshots *without
//! locking*, try-locks only the apparent winner, and re-checks the decision
//! under that single lock; only when the snapshot turns out stale (the
//! winner emptied or its top degraded past the loser's snapshot) does it
//! fall back to locking the second queue.  The common case therefore costs
//! one lock per pop — tracked by [`smq_core::OpStats::locks_acquired`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};
use smq_core::rng::Pcg32;
use smq_core::{HasKey, OpStats, Scheduler, SchedulerHandle};
use smq_dheap::DAryHeap;
use smq_runtime::{Topology, WeightedQueueSampler};

use crate::config::{DeletePolicy, InsertPolicy, MultiQueueConfig};

/// How many `try_lock` failures an insert tolerates before degrading to a
/// blocking `lock()`.  Bounded so a fully contended configuration (more
/// threads than queues, every queue held) cannot livelock the push path.
const TRY_LOCK_RETRY_CAP: u32 = 16;

/// One lock-protected sequential heap plus the lock-free snapshot of its
/// current minimum key.
pub(crate) struct SubQueue<T> {
    heap: CachePadded<Mutex<DAryHeap<T>>>,
    /// Key of the heap's current minimum (`u64::MAX` when empty).  Written
    /// only while `heap`'s lock is held; read without the lock by the
    /// two-choice delete.  Kept on its own cache line so snapshot readers
    /// do not contend with the lock word.
    top_key: CachePadded<AtomicU64>,
}

impl<T: Ord + HasKey> SubQueue<T> {
    fn new(arity: usize) -> Self {
        Self {
            heap: CachePadded::new(Mutex::new(DAryHeap::new(arity))),
            top_key: CachePadded::new(AtomicU64::new(u64::MAX)),
        }
    }

    /// The published key of this queue's minimum; `u64::MAX` means "empty
    /// at last publication".  May be stale by the time the caller acts on
    /// it — every locking path re-validates under the lock.
    #[inline]
    pub(crate) fn top_key(&self) -> u64 {
        self.top_key.load(Ordering::Acquire)
    }

    /// Locks the heap, blocking.  The returned guard republishes the top
    /// key on drop.
    pub(crate) fn lock(&self) -> SubQueueGuard<'_, T> {
        SubQueueGuard {
            heap: self.heap.lock(),
            top_key: &self.top_key,
        }
    }

    /// Attempts to lock the heap without blocking.
    pub(crate) fn try_lock(&self) -> Option<SubQueueGuard<'_, T>> {
        self.heap.try_lock().map(|heap| SubQueueGuard {
            heap,
            top_key: &self.top_key,
        })
    }
}

/// A locked view of a [`SubQueue`].  Dereferences to the underlying
/// [`DAryHeap`]; publishes the (possibly changed) top key when dropped, so
/// the snapshot can never stay stale across an unlock.
pub(crate) struct SubQueueGuard<'a, T: Ord + HasKey> {
    heap: MutexGuard<'a, DAryHeap<T>>,
    top_key: &'a AtomicU64,
}

impl<T: Ord + HasKey> std::ops::Deref for SubQueueGuard<'_, T> {
    type Target = DAryHeap<T>;

    fn deref(&self) -> &DAryHeap<T> {
        &self.heap
    }
}

impl<T: Ord + HasKey> std::ops::DerefMut for SubQueueGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut DAryHeap<T> {
        &mut self.heap
    }
}

impl<T: Ord + HasKey> Drop for SubQueueGuard<'_, T> {
    fn drop(&mut self) {
        // `u64::MAX` is reserved as the pure "empty" sentinel, so published
        // keys are clamped to `u64::MAX - 1`: a legitimate MAX-keyed task
        // advertises itself one notch too optimistically instead of making
        // the queue look empty (which would strand it forever).  The
        // under-lock re-check in the delete recovers the exact ordering.
        let key = self
            .heap
            .peek()
            .map_or(u64::MAX, |top| top.key().min(u64::MAX - 1));
        // Release pairs with the Acquire in `SubQueue::top_key`; the store
        // happens while the lock is still held, so snapshots move through
        // the exact sequence of values the heap's minimum went through.
        self.top_key.store(key, Ordering::Release);
    }
}

/// The Multi-Queue: `C·T` lock-protected sequential heaps with randomized
/// insert and snapshot-guided two-choice delete, plus the paper's batching,
/// temporal locality, and NUMA-aware sampling optimisations.
pub struct MultiQueue<T> {
    pub(crate) queues: Vec<SubQueue<T>>,
    sampler: WeightedQueueSampler,
    config: MultiQueueConfig,
}

impl<T: Ord + HasKey> MultiQueue<T> {
    /// Builds a Multi-Queue from a validated configuration.
    pub fn new(config: MultiQueueConfig) -> Self {
        config.validate();
        let queues = (0..config.num_queues())
            .map(|_| SubQueue::new(config.heap_arity))
            .collect();
        let sampler = match &config.numa {
            Some(numa) => WeightedQueueSampler::new(numa.topology.clone(), config.c_factor, numa.k),
            None => WeightedQueueSampler::uniform(
                Topology::single_node(config.threads),
                config.c_factor,
            ),
        };
        Self {
            queues,
            sampler,
            config,
        }
    }

    /// The configuration this scheduler was built from.
    pub fn config(&self) -> &MultiQueueConfig {
        &self.config
    }

    /// Total number of underlying queues (`C·T`).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Sum of the lengths of all queues.  Approximate under concurrency;
    /// exact when quiescent.  Does not include tasks buffered in handles.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }

    /// `true` when every underlying queue is empty (tasks buffered inside
    /// handles are not visible here).
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.lock().is_empty())
    }

    /// The published top-key snapshot of queue `q` (diagnostics/tests).
    pub fn snapshot_key(&self, q: usize) -> u64 {
        self.queues[q].top_key()
    }
}

impl<T: Ord + HasKey + Send> Scheduler<T> for MultiQueue<T> {
    type Handle<'a>
        = MultiQueueHandle<'a, T>
    where
        T: 'a;

    fn num_threads(&self) -> usize {
        self.config.threads
    }

    fn handle(&self, thread_id: usize) -> MultiQueueHandle<'_, T> {
        assert!(thread_id < self.config.threads, "thread id out of range");
        MultiQueueHandle {
            parent: self,
            thread_id,
            rng: Pcg32::for_thread(self.config.seed, thread_id),
            stats: OpStats::default(),
            insert_buffer: Vec::new(),
            delete_buffer: VecDeque::new(),
            tl_insert_queue: None,
            tl_delete_queue: None,
        }
    }
}

/// A worker thread's handle onto a [`MultiQueue`].
pub struct MultiQueueHandle<'a, T> {
    parent: &'a MultiQueue<T>,
    thread_id: usize,
    rng: Pcg32,
    stats: OpStats,
    /// Pending inserts under [`InsertPolicy::Batching`].
    insert_buffer: Vec<T>,
    /// Prefetched tasks under [`DeletePolicy::Batching`], ascending order.
    delete_buffer: VecDeque<T>,
    /// "Current" queue under [`InsertPolicy::TemporalLocality`].
    tl_insert_queue: Option<usize>,
    /// "Current" queue under [`DeletePolicy::TemporalLocality`].
    tl_delete_queue: Option<usize>,
}

impl<T: Ord + HasKey> MultiQueueHandle<'_, T> {
    /// Samples one queue index, recording NUMA locality statistics.
    fn sample_queue(&mut self) -> usize {
        let (q, local) = self.parent.sampler.sample(self.thread_id, &mut self.rng);
        if local {
            self.stats.local_samples += 1;
        } else {
            self.stats.remote_samples += 1;
        }
        q
    }

    /// Samples two distinct queue indices.  Callers must only invoke this
    /// when at least two queues exist (single-queue configurations degrade
    /// to [`Self::pop_single`] instead, which cannot spin forever).
    fn sample_two_distinct(&mut self) -> (usize, usize) {
        debug_assert!(
            self.parent.num_queues() >= 2,
            "two-choice sampling requires at least two queues"
        );
        let a = self.sample_queue();
        loop {
            let b = self.sample_queue();
            if b != a {
                return (a, b);
            }
        }
    }

    /// Pushes a single task into a freshly sampled queue, retrying on lock
    /// failure like Listing 1 — but with a bounded number of `try_lock`
    /// attempts: past [`TRY_LOCK_RETRY_CAP`] failures the insert blocks on
    /// the next sampled queue so a fully contended configuration cannot
    /// livelock.
    fn push_direct(&mut self, task: T) {
        let mut task = Some(task);
        let mut attempts = 0u32;
        loop {
            let q = self.sample_queue();
            if attempts >= TRY_LOCK_RETRY_CAP {
                self.stats.push_locks_acquired += 1;
                self.parent.queues[q]
                    .lock()
                    .push(task.take().expect("task present until pushed"));
                return;
            }
            match self.parent.queues[q].try_lock() {
                Some(mut guard) => {
                    self.stats.push_locks_acquired += 1;
                    guard.push(task.take().expect("task present until pushed"));
                    return;
                }
                None => {
                    self.stats.contention_retries += 1;
                    attempts += 1;
                }
            }
        }
    }

    /// Drains `tasks` into one freshly sampled queue under a single lock,
    /// with the same bounded-retry degradation as [`Self::push_direct`].
    /// The building block of the native batch insert: `push_batch` calls it
    /// once per batch half.
    fn push_run_direct(&mut self, tasks: &mut Vec<T>) {
        let mut attempts = 0u32;
        loop {
            let q = self.sample_queue();
            let guard = if attempts >= TRY_LOCK_RETRY_CAP {
                Some(self.parent.queues[q].lock())
            } else {
                self.parent.queues[q].try_lock()
            };
            match guard {
                Some(mut guard) => {
                    self.stats.push_locks_acquired += 1;
                    for task in tasks.drain(..) {
                        guard.push(task);
                    }
                    return;
                }
                None => {
                    self.stats.contention_retries += 1;
                    attempts += 1;
                }
            }
        }
    }

    /// Pushes into the temporally "current" queue, changing it first with
    /// the configured probability.
    fn push_temporal(&mut self, task: T, change: smq_core::Probability) {
        let needs_new = self.tl_insert_queue.is_none() || change.sample(&mut self.rng);
        if needs_new {
            self.tl_insert_queue = Some(self.sample_queue());
        }
        let q = self.tl_insert_queue.expect("set above");
        // Re-acquiring a recently used, usually uncontended lock is cheap;
        // temporal locality deliberately trades contention for cache reuse.
        let mut guard = self.parent.queues[q].lock();
        self.stats.push_locks_acquired += 1;
        guard.push(task);
    }

    /// Flushes the insert buffer into a single randomly chosen queue, with
    /// the same bounded-retry degradation as [`Self::push_direct`].
    fn flush_insert_buffer(&mut self) {
        if self.insert_buffer.is_empty() {
            return;
        }
        let mut attempts = 0u32;
        loop {
            let q = self.sample_queue();
            let guard = if attempts >= TRY_LOCK_RETRY_CAP {
                Some(self.parent.queues[q].lock())
            } else {
                self.parent.queues[q].try_lock()
            };
            match guard {
                Some(mut guard) => {
                    // The lock amortization is counted; `batch_flushes` is
                    // not — that counter tracks native `push_batch` calls
                    // only, and this flush may be fed by per-task pushes.
                    self.stats.push_locks_acquired += 1;
                    for task in self.insert_buffer.drain(..) {
                        guard.push(task);
                    }
                    return;
                }
                None => {
                    self.stats.contention_retries += 1;
                    attempts += 1;
                }
            }
        }
    }

    /// Snapshot-guided two-choice delete: compare the two sampled queues'
    /// published top keys without locking, lock only the winner, re-check
    /// under the lock, and fall back to the second lock on staleness.
    fn pop_two_choice(&mut self, batch: usize) -> Option<T> {
        let parent = self.parent;
        if parent.num_queues() < 2 {
            return self.pop_single(batch);
        }
        loop {
            let (q1, q2) = self.sample_two_distinct();
            let k1 = parent.queues[q1].top_key();
            let k2 = parent.queues[q2].top_key();
            if k1 == u64::MAX && k2 == u64::MAX {
                // Both appeared empty.  Snapshots are republished on every
                // unlock, so when the scheduler is quiescent this is exact;
                // under concurrency a spurious `None` is fine (the executor
                // re-checks via termination detection).
                return None;
            }
            let (winner, loser) = if k1 <= k2 { (q1, q2) } else { (q2, q1) };
            let guard = match parent.queues[winner].try_lock() {
                Some(g) => g,
                None => {
                    self.stats.contention_retries += 1;
                    continue;
                }
            };
            self.stats.locks_acquired += 1;
            // Re-check under the lock: is the winner still at least as good
            // as the loser's current snapshot?
            let loser_key = parent.queues[loser].top_key();
            let still_winner = match guard.peek() {
                Some(top) => top.key() <= loser_key,
                None => false,
            };
            if still_winner {
                // Batch extraction is *bounded by the loser's snapshot*:
                // the prefetch keeps taking from the winner only while its
                // top would still win the two-choice comparison, so a batch
                // of B costs one lock but preserves (snapshot-grade)
                // per-task delete quality — extracting the winner's run
                // unconditionally was measurably worse on small frontiers,
                // where one queue's run is a big slice of the open set.
                return self.extract_batch_from(guard, batch, loser_key);
            }
            // Stale snapshot: the winner emptied or degraded.  Fall back to
            // the classic both-locked comparison so the delete still returns
            // the better of the two sampled queues.
            match parent.queues[loser].try_lock() {
                Some(loser_guard) => {
                    self.stats.locks_acquired += 1;
                    match self.extract_from_better(guard, loser_guard, batch) {
                        Some(task) => return Some(task),
                        // Both genuinely empty under their locks: resample
                        // unless the whole structure looks drained.
                        None => {
                            if parent.queues.iter().all(|q| q.top_key() == u64::MAX) {
                                return None;
                            }
                        }
                    }
                }
                None => {
                    drop(guard);
                    self.stats.contention_retries += 1;
                }
            }
        }
    }

    /// Degraded delete for configurations with a single queue: lock it and
    /// extract directly (there is nothing to compare against, so the batch
    /// is unbounded).
    fn pop_single(&mut self, batch: usize) -> Option<T> {
        let mut guard = self.parent.queues[0].lock();
        self.stats.locks_acquired += 1;
        self.extract_batch(&mut guard, batch, u64::MAX)
    }

    /// Extracts a batch from an already locked queue, consuming the guard.
    fn extract_batch_from(
        &mut self,
        mut guard: SubQueueGuard<'_, T>,
        batch: usize,
        bound: u64,
    ) -> Option<T> {
        self.extract_batch(&mut guard, batch, bound)
    }

    /// Given both locked queues, picks the one whose top task has higher
    /// priority and extracts a batch from it, bounded by the other queue's
    /// current top.
    fn extract_from_better<'g>(
        &mut self,
        mut guard1: SubQueueGuard<'g, T>,
        mut guard2: SubQueueGuard<'g, T>,
        batch: usize,
    ) -> Option<T> {
        let use_first = match (guard1.peek(), guard2.peek()) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let (source, other) = if use_first {
            (&mut guard1, &guard2)
        } else {
            (&mut guard2, &guard1)
        };
        let bound = other.peek().map_or(u64::MAX, |t| t.key());
        self.extract_batch(source, batch, bound)
    }

    /// Extracts up to `batch` tasks from a locked queue, returning the
    /// first.  The prefetched remainder (everything past the first task)
    /// only keeps flowing while the queue's next top is `<= bound` — the
    /// sampled rival's key — so a batched delete never returns tasks the
    /// per-task two-choice rule would have rejected.
    fn extract_batch(
        &mut self,
        queue: &mut SubQueueGuard<'_, T>,
        batch: usize,
        bound: u64,
    ) -> Option<T> {
        let first = queue.pop()?;
        for _ in 1..batch {
            match queue.peek() {
                Some(next) if next.key() <= bound => {
                    let task = queue.pop().expect("peeked task present");
                    self.delete_buffer.push_back(task);
                }
                _ => break,
            }
        }
        Some(first)
    }

    /// Pops from the temporally "current" queue, re-selecting it via the
    /// snapshot-guided two-choice rule with the configured probability or
    /// when it runs dry.
    fn pop_temporal(&mut self, change: smq_core::Probability) -> Option<T> {
        let needs_new = self.tl_delete_queue.is_none() || change.sample(&mut self.rng);
        if !needs_new {
            let q = self.tl_delete_queue.expect("checked above");
            // Snapshot re-check before paying the lock (the same idiom as
            // the two-choice delete): a `u64::MAX` snapshot means the
            // current queue was empty at its last unlock, so a blocking
            // lock would almost surely confirm emptiness at full price —
            // fall straight through to a fresh selection instead.  A stale
            // non-MAX snapshot merely costs the (previous) lock-and-miss.
            if self.parent.queues[q].top_key() != u64::MAX {
                let mut guard = self.parent.queues[q].lock();
                self.stats.locks_acquired += 1;
                if let Some(task) = guard.pop() {
                    return Some(task);
                }
            }
            // Current queue ran dry: fall through to a fresh selection.
        }
        // Select a new current queue with the snapshot-guided two-choice
        // rule and remember which queue the task came from.
        if self.parent.num_queues() < 2 {
            self.tl_delete_queue = Some(0);
            return self.pop_single(1);
        }
        loop {
            let (q1, q2) = self.sample_two_distinct();
            let k1 = self.parent.queues[q1].top_key();
            let k2 = self.parent.queues[q2].top_key();
            if k1 == u64::MAX && k2 == u64::MAX {
                return None;
            }
            let (winner, loser) = if k1 <= k2 { (q1, q2) } else { (q2, q1) };
            let mut guard = match self.parent.queues[winner].try_lock() {
                Some(g) => g,
                None => {
                    self.stats.contention_retries += 1;
                    continue;
                }
            };
            self.stats.locks_acquired += 1;
            let still_winner = match guard.peek() {
                Some(top) => top.key() <= self.parent.queues[loser].top_key(),
                None => false,
            };
            if still_winner {
                self.tl_delete_queue = Some(winner);
                return guard.pop();
            }
            drop(guard);
            // Stale: prefer the loser, which now looks better.
            match self.parent.queues[loser].try_lock() {
                Some(mut loser_guard) => {
                    self.stats.locks_acquired += 1;
                    if let Some(task) = loser_guard.pop() {
                        self.tl_delete_queue = Some(loser);
                        return Some(task);
                    }
                    drop(loser_guard);
                    if self.parent.queues.iter().all(|q| q.top_key() == u64::MAX) {
                        return None;
                    }
                }
                None => self.stats.contention_retries += 1,
            }
        }
    }
}

impl<T: Ord + HasKey + Send> SchedulerHandle<T> for MultiQueueHandle<'_, T> {
    fn push(&mut self, task: T) {
        self.stats.pushes += 1;
        match self.parent.config.insert {
            InsertPolicy::Direct => self.push_direct(task),
            InsertPolicy::TemporalLocality(p) => self.push_temporal(task, p),
            InsertPolicy::Batching(batch) => {
                self.insert_buffer.push(task);
                if self.insert_buffer.len() >= batch {
                    self.flush_insert_buffer();
                }
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        if let Some(task) = self.delete_buffer.pop_front() {
            self.stats.pops += 1;
            return Some(task);
        }
        let got = match self.parent.config.delete {
            DeletePolicy::TwoChoice => self.pop_two_choice(1),
            DeletePolicy::TemporalLocality(p) => self.pop_temporal(p),
            DeletePolicy::Batching(batch) => self.pop_two_choice(batch),
        };
        match got {
            Some(task) => {
                self.stats.pops += 1;
                Some(task)
            }
            None => {
                self.stats.empty_pops += 1;
                None
            }
        }
    }

    fn push_batch(&mut self, tasks: &mut Vec<T>) {
        if tasks.is_empty() {
            return;
        }
        let n = tasks.len() as u64;
        self.stats.pushes += n;
        self.stats.batch_flushes += 1;
        self.stats.tasks_batched += n;
        match self.parent.config.insert {
            // The policy already batches: merge into its buffer and let its
            // own threshold decide when the lock is paid.
            InsertPolicy::Batching(batch) => {
                self.insert_buffer.append(tasks);
                if self.insert_buffer.len() >= batch {
                    self.flush_insert_buffer();
                }
            }
            // One sampled queue, one lock, the whole batch — unless the
            // batch exceeds `batch_split`, in which case it is halved
            // across two independently sampled sub-queues so a single
            // queue's key distribution does not absorb the entire run
            // (two locks instead of one, still far under one per task).
            // Relaxation is untouched either way: each half is N
            // consecutive inserts into one lock-protected sub-queue,
            // exactly what `InsertPolicy::Batching` already does on its
            // own flush boundary.
            InsertPolicy::Direct => {
                if tasks.len() > self.parent.config.batch_split && self.parent.num_queues() >= 2 {
                    let mut tail = tasks.split_off(tasks.len() / 2);
                    self.push_run_direct(tasks);
                    self.push_run_direct(&mut tail);
                } else {
                    self.push_run_direct(tasks);
                }
            }
            // Temporal locality: one change-die roll and one lock on the
            // "current" queue for the whole batch.
            InsertPolicy::TemporalLocality(change) => {
                let needs_new = self.tl_insert_queue.is_none() || change.sample(&mut self.rng);
                if needs_new {
                    self.tl_insert_queue = Some(self.sample_queue());
                }
                let q = self.tl_insert_queue.expect("set above");
                let mut guard = self.parent.queues[q].lock();
                self.stats.push_locks_acquired += 1;
                for task in tasks.drain(..) {
                    guard.push(task);
                }
            }
        }
    }

    fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut got = 0;
        // Drain the prefetch buffer first — tasks already paid for.
        while got < max {
            match self.delete_buffer.pop_front() {
                Some(task) => {
                    self.stats.pops += 1;
                    out.push(task);
                    got += 1;
                }
                None => break,
            }
        }
        while got < max {
            let want = max - got;
            // One snapshot-guided delete extracts the whole remainder from
            // the winning queue under its single lock; the temporal policy
            // keeps its own per-task current-queue discipline (its lock is
            // already amortized across the streak).
            let first = match self.parent.config.delete {
                DeletePolicy::TwoChoice => self.pop_two_choice(want),
                DeletePolicy::TemporalLocality(p) => self.pop_temporal(p),
                DeletePolicy::Batching(batch) => self.pop_two_choice(want.max(batch)),
            };
            match first {
                Some(task) => {
                    self.stats.pops += 1;
                    out.push(task);
                    got += 1;
                    while got < max {
                        match self.delete_buffer.pop_front() {
                            Some(task) => {
                                self.stats.pops += 1;
                                out.push(task);
                                got += 1;
                            }
                            None => break,
                        }
                    }
                }
                None => {
                    if got == 0 {
                        self.stats.empty_pops += 1;
                    }
                    break;
                }
            }
        }
        got
    }

    fn flush(&mut self) {
        self.flush_insert_buffer();
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }

    fn min_key_hint(&self) -> Option<u64> {
        // Minimum over every sub-queue's published top-key snapshot (the
        // same Acquire loads pop's two-choice comparison reads).  Tasks
        // still sitting in handles' insert buffers are invisible here —
        // the estimate is advisory, exactly like the snapshots themselves.
        let best = self
            .parent
            .queues
            .iter()
            .map(|q| q.top_key())
            .min()
            .unwrap_or(u64::MAX);
        (best != u64::MAX).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smq_core::{Probability, Task};

    fn drain_all<T: Ord + HasKey + Send + Copy>(handle: &mut MultiQueueHandle<'_, T>) -> Vec<T> {
        // Relaxed schedulers may need several attempts to find the last
        // tasks; an empty result 64 times in a row means truly empty for a
        // single-threaded test.
        let mut out = Vec::new();
        let mut misses = 0;
        while misses < 64 {
            match handle.pop() {
                Some(t) => {
                    out.push(t);
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        out
    }

    fn conserves_elements(config: MultiQueueConfig) {
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(0);
        let n = 500u64;
        for v in 0..n {
            handle.push(v);
        }
        handle.flush();
        let mut drained = drain_all(&mut handle);
        drained.sort_unstable();
        assert_eq!(drained, (0..n).collect::<Vec<_>>());
        assert!(mq.is_empty());
        let stats = handle.stats();
        assert_eq!(stats.pushes, n);
        assert_eq!(stats.pops, n);
    }

    #[test]
    fn classic_conserves_elements() {
        conserves_elements(MultiQueueConfig::classic(2));
    }

    #[test]
    fn batching_insert_conserves_elements() {
        conserves_elements(MultiQueueConfig::classic(2).with_insert(InsertPolicy::Batching(16)));
    }

    #[test]
    fn batching_delete_conserves_elements() {
        conserves_elements(MultiQueueConfig::classic(2).with_delete(DeletePolicy::Batching(8)));
    }

    #[test]
    fn temporal_locality_conserves_elements() {
        conserves_elements(
            MultiQueueConfig::classic(2)
                .with_insert(InsertPolicy::TemporalLocality(Probability::new(4)))
                .with_delete(DeletePolicy::TemporalLocality(Probability::new(4))),
        );
    }

    #[test]
    fn numa_variant_conserves_elements_and_tracks_locality() {
        let config = MultiQueueConfig::classic(4)
            .with_numa(Topology::split(4, 2), 16)
            .with_seed(11);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(1);
        for v in 0..200u64 {
            handle.push(v);
        }
        // K = 16 makes remote queues rare two-choice candidates, so the
        // last stragglers on the far node need far more attempts than the
        // uniform drain budget: be patient rather than lossy.
        let mut drained = Vec::new();
        let mut misses = 0;
        while misses < 4096 {
            match handle.pop() {
                Some(t) => {
                    drained.push(t);
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        assert_eq!(drained.len(), 200);
        let stats = handle.stats();
        assert!(stats.local_samples > 0);
        // K = 16 strongly biases towards the local node.
        assert!(stats.local_samples > stats.remote_samples);
        assert!(stats.locality_rate().unwrap() > 0.5);
    }

    #[test]
    fn two_choice_prefers_higher_priority_top() {
        // With exactly two queues and deterministic contents, the two-choice
        // delete must return the global minimum.
        let config = MultiQueueConfig::classic(1).with_c_factor(2).with_seed(3);
        let mq: MultiQueue<Task> = MultiQueue::new(config);
        // Manually place tasks into both queues.
        mq.queues[0].lock().push(Task::new(50, 0));
        mq.queues[1].lock().push(Task::new(10, 1));
        let mut handle = mq.handle(0);
        assert_eq!(handle.pop(), Some(Task::new(10, 1)));
        assert_eq!(handle.pop(), Some(Task::new(50, 0)));
        assert_eq!(handle.pop(), None);
    }

    #[test]
    fn snapshots_track_heap_minimum() {
        let config = MultiQueueConfig::classic(1).with_c_factor(2).with_seed(3);
        let mq: MultiQueue<Task> = MultiQueue::new(config);
        assert_eq!(mq.snapshot_key(0), u64::MAX);
        mq.queues[0].lock().push(Task::new(50, 0));
        assert_eq!(mq.snapshot_key(0), 50);
        mq.queues[0].lock().push(Task::new(7, 1));
        assert_eq!(mq.snapshot_key(0), 7);
        assert_eq!(mq.queues[0].lock().pop(), Some(Task::new(7, 1)));
        assert_eq!(mq.snapshot_key(0), 50);
        assert_eq!(mq.queues[0].lock().pop(), Some(Task::new(50, 0)));
        assert_eq!(mq.snapshot_key(0), u64::MAX);
    }

    #[test]
    fn single_lock_delete_uses_one_lock_per_pop_when_uncontended() {
        // Single-threaded: snapshots are always exact, so every successful
        // pop must acquire exactly one lock (the acceptance criterion of the
        // snapshot optimisation; the classic implementation acquired two).
        let config = MultiQueueConfig::classic(2).with_seed(17);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(0);
        for v in 0..1_000u64 {
            handle.push(v);
        }
        let drained = drain_all(&mut handle);
        assert_eq!(drained.len(), 1_000);
        let stats = handle.stats();
        assert_eq!(stats.pops, 1_000);
        assert_eq!(
            stats.locks_acquired, 1_000,
            "uncontended snapshot delete must lock exactly once per pop"
        );
    }

    #[test]
    fn stale_snapshot_falls_back_to_second_lock() {
        // Forge a stale snapshot: make queue 0 advertise a better key than
        // it actually holds, so the delete locks it as the "winner", finds
        // the re-check failing, and must recover the true minimum from
        // queue 1 via the fallback path.
        let config = MultiQueueConfig::classic(1).with_c_factor(2).with_seed(3);
        let mq: MultiQueue<Task> = MultiQueue::new(config);
        mq.queues[0].lock().push(Task::new(80, 0));
        mq.queues[1].lock().push(Task::new(20, 1));
        // Overwrite queue 0's snapshot with a lie (better than queue 1's).
        mq.queues[0].top_key.store(5, Ordering::Release);
        let mut handle = mq.handle(0);
        assert_eq!(handle.pop(), Some(Task::new(20, 1)));
        let stats = handle.stats();
        assert!(
            stats.locks_acquired >= 2,
            "stale snapshot must trigger the two-lock fallback"
        );
        // The fallback republished queue 0's honest snapshot.
        assert_eq!(mq.snapshot_key(0), 80);
        assert_eq!(handle.pop(), Some(Task::new(80, 0)));
        assert_eq!(handle.pop(), None);
    }

    #[test]
    fn max_keyed_tasks_are_not_stranded_by_the_empty_sentinel() {
        // `u64::MAX` doubles as the snapshot's "empty" marker; a legitimate
        // MAX-keyed task must still be findable (published keys clamp to
        // MAX - 1, so the queue never advertises itself as empty).
        let config = MultiQueueConfig::classic(1).with_c_factor(2).with_seed(3);
        let mq: MultiQueue<Task> = MultiQueue::new(config);
        mq.queues[0].lock().push(Task::new(u64::MAX, 7));
        assert_eq!(mq.snapshot_key(0), u64::MAX - 1);
        let mut handle = mq.handle(0);
        assert_eq!(handle.pop(), Some(Task::new(u64::MAX, 7)));
        assert_eq!(handle.pop(), None);
        assert_eq!(mq.snapshot_key(0), u64::MAX);
    }

    #[test]
    fn stale_empty_snapshot_recovers_remaining_task() {
        // The reverse staleness: the winner advertises a task but is empty.
        let config = MultiQueueConfig::classic(1).with_c_factor(2).with_seed(3);
        let mq: MultiQueue<Task> = MultiQueue::new(config);
        mq.queues[1].lock().push(Task::new(30, 2));
        // Queue 0 is empty but claims to hold the global minimum.
        mq.queues[0].top_key.store(1, Ordering::Release);
        let mut handle = mq.handle(0);
        assert_eq!(handle.pop(), Some(Task::new(30, 2)));
        assert_eq!(mq.snapshot_key(0), u64::MAX, "lie must be corrected");
        assert_eq!(handle.pop(), None);
    }

    #[test]
    fn temporal_delete_skips_the_lock_when_the_current_queue_looks_empty() {
        // Drain everything, then keep popping: every queue's snapshot is
        // MAX, so neither the temporal "current queue" path nor the
        // two-choice fallback may acquire another lock.
        let config = MultiQueueConfig::classic(2)
            .with_delete(DeletePolicy::TemporalLocality(Probability::new(64)))
            .with_seed(13);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(0);
        for v in 0..200u64 {
            handle.push(v);
        }
        let drained = drain_all(&mut handle);
        assert_eq!(drained.len(), 200);
        let locks_after_drain = handle.stats().locks_acquired;
        for _ in 0..50 {
            assert_eq!(handle.pop(), None);
        }
        assert_eq!(
            handle.stats().locks_acquired,
            locks_after_drain,
            "pops on an all-empty-snapshot scheduler must not lock"
        );
    }

    #[test]
    fn delete_batching_prefetches_in_priority_order() {
        let config = MultiQueueConfig::classic(1)
            .with_c_factor(2)
            .with_delete(DeletePolicy::Batching(4))
            .with_seed(5);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        // All tasks in one queue so a single batch grabs the four smallest.
        {
            let mut q = mq.queues[0].lock();
            for v in [9u64, 3, 7, 1, 5] {
                q.push(v);
            }
        }
        let mut handle = mq.handle(0);
        assert_eq!(handle.pop(), Some(1));
        // The next three come from the prefetch buffer in ascending order,
        // without touching the shared queues.
        assert_eq!(handle.delete_buffer.len(), 3);
        assert_eq!(handle.pop(), Some(3));
        assert_eq!(handle.pop(), Some(5));
        assert_eq!(handle.pop(), Some(7));
        assert_eq!(handle.pop(), Some(9));
    }

    #[test]
    fn insert_batching_defers_until_flush_or_full() {
        let config = MultiQueueConfig::classic(2)
            .with_insert(InsertPolicy::Batching(8))
            .with_seed(6);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(0);
        for v in 0..5u64 {
            handle.push(v);
        }
        // Fewer than the batch size: nothing visible in the shared queues.
        assert!(mq.is_empty());
        handle.flush();
        assert_eq!(mq.len(), 5);
        for v in 5..13u64 {
            handle.push(v);
        }
        // Crossing the batch size triggered an automatic flush.
        assert!(mq.len() >= 13 - 5);
    }

    #[test]
    fn batch_insert_pays_one_lock_per_batch() {
        let config = MultiQueueConfig::classic(2).with_seed(5);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut h = mq.handle(0);
        let mut batch: Vec<u64> = (0..16u64).collect();
        h.push_batch(&mut batch);
        assert!(batch.is_empty());
        let stats = h.stats();
        assert_eq!(stats.pushes, 16);
        assert_eq!(stats.push_locks_acquired, 1, "one lock for the batch");
        assert_eq!(stats.batch_flushes, 1);
        assert_eq!(stats.tasks_batched, 16);
        assert_eq!(stats.locks_per_push(), Some(1.0 / 16.0));
    }

    #[test]
    fn oversized_batch_splits_across_two_queues() {
        let config = MultiQueueConfig::classic(2).with_seed(5);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut h = mq.handle(0);
        let mut batch: Vec<u64> = (0..64u64).collect();
        h.push_batch(&mut batch);
        assert!(batch.is_empty());
        let stats = h.stats();
        assert_eq!(stats.pushes, 64);
        assert_eq!(stats.push_locks_acquired, 2, "one lock per batch half");
        assert_eq!(stats.batch_flushes, 1);
        assert_eq!(stats.tasks_batched, 64);
        // No single sub-queue absorbed the whole run.
        let largest = (0..mq.num_queues())
            .map(|q| mq.queues[q].lock().len())
            .max()
            .unwrap();
        assert!(largest < 64, "batch must be split across two sub-queues");
        assert_eq!(mq.len(), 64);
    }

    #[test]
    fn batch_split_threshold_is_tunable() {
        // Raising the threshold restores the one-lock whole-batch path.
        let config = MultiQueueConfig::classic(2)
            .with_batch_split(64)
            .with_seed(5);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut h = mq.handle(0);
        let mut batch: Vec<u64> = (0..64u64).collect();
        h.push_batch(&mut batch);
        assert_eq!(h.stats().push_locks_acquired, 1);
    }

    #[test]
    fn batch_delete_extracts_the_run_under_one_lock() {
        let config = MultiQueueConfig::classic(2).with_seed(5);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut h = mq.handle(0);
        let mut batch: Vec<u64> = (0..16u64).collect();
        h.push_batch(&mut batch);
        // The whole batch landed in one sub-queue; a batched delete that
        // samples it must extract the full run under its single lock.
        let mut out = Vec::new();
        let mut misses = 0;
        while out.len() < 16 && misses < 256 {
            let want = 16 - out.len();
            if h.pop_batch(&mut out, want) == 0 {
                misses += 1;
            }
        }
        assert_eq!(out, (0..16u64).collect::<Vec<_>>());
        let stats = h.stats();
        assert_eq!(stats.pops, 16);
        assert!(
            stats.locks_acquired <= 2,
            "batched delete must not pay per-task locks (got {})",
            stats.locks_acquired
        );
        // Fully drained: further batch pops see all-MAX snapshots and do
        // not lock at all.
        let locks = h.stats().locks_acquired;
        assert_eq!(h.pop_batch(&mut out, 8), 0);
        assert_eq!(h.stats().locks_acquired, locks);
    }

    #[test]
    fn batch_insert_respects_the_batching_policy_buffer() {
        let config = MultiQueueConfig::classic(2)
            .with_insert(InsertPolicy::Batching(32))
            .with_seed(6);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut h = mq.handle(0);
        let mut batch: Vec<u64> = (0..8u64).collect();
        h.push_batch(&mut batch);
        // Below the policy threshold: merged into the insert buffer, not
        // yet visible.
        assert!(mq.is_empty());
        assert_eq!(h.stats().pushes, 8);
        let mut batch: Vec<u64> = (8..40u64).collect();
        h.push_batch(&mut batch);
        // Crossing the threshold flushed everything in one lock.
        assert_eq!(mq.len(), 40);
        let stats = h.stats();
        assert_eq!(stats.push_locks_acquired, 1);
        // Both native push_batch calls are counted, flushed or not.
        assert_eq!(stats.batch_flushes, 2);
        assert_eq!(stats.tasks_batched, 40);
    }

    #[test]
    fn policy_flushes_from_per_task_pushes_are_not_batches() {
        // `batch_flushes` tracks native push_batch calls only: a
        // threshold flush fed by per-task `push` amortizes the lock but
        // must not report batch activity (batch size 1 never batches).
        let config = MultiQueueConfig::classic(2)
            .with_insert(InsertPolicy::Batching(8))
            .with_seed(6);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut h = mq.handle(0);
        for v in 0..20u64 {
            h.push(v);
        }
        h.flush();
        let stats = h.stats();
        assert_eq!(stats.pushes, 20);
        assert_eq!(stats.batch_flushes, 0);
        assert_eq!(stats.tasks_batched, 0);
        assert!(
            stats.push_locks_acquired >= 1,
            "policy flushes still count their lock"
        );
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        use std::sync::atomic::AtomicU64 as SharedCounter;
        let threads = 4;
        let per_thread = 5_000u64;
        let config = MultiQueueConfig::classic(threads).with_seed(8);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let popped = SharedCounter::new(0);
        let sum = SharedCounter::new(0);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let mq = &mq;
                let popped = &popped;
                let sum = &sum;
                s.spawn(move || {
                    let mut handle = mq.handle(tid);
                    for i in 0..per_thread {
                        handle.push(tid as u64 * per_thread + i);
                    }
                    handle.flush();
                    while let Some(v) = handle.pop() {
                        popped.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        // Every thread pops until it sees two empty samples; collectively
        // they must have removed everything that is not still in a queue.
        let remaining = mq.len() as u64;
        assert_eq!(popped.load(Ordering::Relaxed) + remaining, total);
        // Finish draining single-threaded and check the value sum.  A single
        // None is not "empty" for a relaxed scheduler (both sampled queues
        // may happen to be empty), so tolerate a run of misses.
        let mut handle = mq.handle(0);
        let mut misses = 0;
        while misses < 64 {
            match handle.pop() {
                Some(v) => {
                    sum.fetch_add(v, Ordering::Relaxed);
                    popped.fetch_add(1, Ordering::Relaxed);
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        assert_eq!(popped.load(Ordering::Relaxed), total);
        assert!(mq.is_empty());
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    }
}
