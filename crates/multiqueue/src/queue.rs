//! The Multi-Queue scheduler (Listing 1) with configurable insert/delete
//! policies and optional NUMA-aware sampling.

use std::collections::VecDeque;

use crossbeam_utils::CachePadded;
use parking_lot::{Mutex, MutexGuard};
use smq_core::rng::Pcg32;
use smq_core::{OpStats, Scheduler, SchedulerHandle};
use smq_dheap::DAryHeap;
use smq_runtime::{Topology, WeightedQueueSampler};

use crate::config::{DeletePolicy, InsertPolicy, MultiQueueConfig};

/// The Multi-Queue: `C·T` lock-protected sequential heaps with randomized
/// insert and two-choice delete, plus the paper's batching, temporal
/// locality, and NUMA-aware sampling optimisations.
pub struct MultiQueue<T> {
    queues: Vec<CachePadded<Mutex<DAryHeap<T>>>>,
    sampler: WeightedQueueSampler,
    config: MultiQueueConfig,
}

impl<T: Ord> MultiQueue<T> {
    /// Builds a Multi-Queue from a validated configuration.
    pub fn new(config: MultiQueueConfig) -> Self {
        config.validate();
        let queues = (0..config.num_queues())
            .map(|_| CachePadded::new(Mutex::new(DAryHeap::new(config.heap_arity))))
            .collect();
        let sampler = match &config.numa {
            Some(numa) => {
                WeightedQueueSampler::new(numa.topology.clone(), config.c_factor, numa.k)
            }
            None => WeightedQueueSampler::uniform(
                Topology::single_node(config.threads),
                config.c_factor,
            ),
        };
        Self {
            queues,
            sampler,
            config,
        }
    }

    /// The configuration this scheduler was built from.
    pub fn config(&self) -> &MultiQueueConfig {
        &self.config
    }

    /// Total number of underlying queues (`C·T`).
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Sum of the lengths of all queues.  Approximate under concurrency;
    /// exact when quiescent.  Does not include tasks buffered in handles.
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }

    /// `true` when every underlying queue is empty (tasks buffered inside
    /// handles are not visible here).
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.lock().is_empty())
    }
}

impl<T: Ord + Send> Scheduler<T> for MultiQueue<T> {
    type Handle<'a>
        = MultiQueueHandle<'a, T>
    where
        T: 'a;

    fn num_threads(&self) -> usize {
        self.config.threads
    }

    fn handle(&self, thread_id: usize) -> MultiQueueHandle<'_, T> {
        assert!(thread_id < self.config.threads, "thread id out of range");
        MultiQueueHandle {
            parent: self,
            thread_id,
            rng: Pcg32::for_thread(self.config.seed, thread_id),
            stats: OpStats::default(),
            insert_buffer: Vec::new(),
            delete_buffer: VecDeque::new(),
            tl_insert_queue: None,
            tl_delete_queue: None,
        }
    }
}

/// A worker thread's handle onto a [`MultiQueue`].
pub struct MultiQueueHandle<'a, T> {
    parent: &'a MultiQueue<T>,
    thread_id: usize,
    rng: Pcg32,
    stats: OpStats,
    /// Pending inserts under [`InsertPolicy::Batching`].
    insert_buffer: Vec<T>,
    /// Prefetched tasks under [`DeletePolicy::Batching`], ascending order.
    delete_buffer: VecDeque<T>,
    /// "Current" queue under [`InsertPolicy::TemporalLocality`].
    tl_insert_queue: Option<usize>,
    /// "Current" queue under [`DeletePolicy::TemporalLocality`].
    tl_delete_queue: Option<usize>,
}

impl<T: Ord> MultiQueueHandle<'_, T> {
    /// Samples one queue index, recording NUMA locality statistics.
    fn sample_queue(&mut self) -> usize {
        let (q, local) = self.parent.sampler.sample(self.thread_id, &mut self.rng);
        if local {
            self.stats.local_node_accesses += 1;
        } else {
            self.stats.remote_node_accesses += 1;
        }
        q
    }

    /// Samples two distinct queue indices.
    fn sample_two_distinct(&mut self) -> (usize, usize) {
        let a = self.sample_queue();
        loop {
            let b = self.sample_queue();
            if b != a {
                return (a, b);
            }
        }
    }

    /// Pushes a single task into a freshly sampled queue, retrying on lock
    /// failure exactly like Listing 1.
    fn push_direct(&mut self, task: T) {
        let mut task = Some(task);
        loop {
            let q = self.sample_queue();
            match self.parent.queues[q].try_lock() {
                Some(mut guard) => {
                    guard.push(task.take().expect("task present until pushed"));
                    return;
                }
                None => self.stats.contention_retries += 1,
            }
        }
    }

    /// Pushes into the temporally "current" queue, changing it first with
    /// the configured probability.
    fn push_temporal(&mut self, task: T, change: smq_core::Probability) {
        let needs_new = self.tl_insert_queue.is_none() || change.sample(&mut self.rng);
        if needs_new {
            self.tl_insert_queue = Some(self.sample_queue());
        }
        let q = self.tl_insert_queue.expect("set above");
        // Re-acquiring a recently used, usually uncontended lock is cheap;
        // temporal locality deliberately trades contention for cache reuse.
        let mut guard = self.parent.queues[q].lock();
        guard.push(task);
    }

    /// Flushes the insert buffer into a single randomly chosen queue.
    fn flush_insert_buffer(&mut self) {
        if self.insert_buffer.is_empty() {
            return;
        }
        loop {
            let q = self.sample_queue();
            match self.parent.queues[q].try_lock() {
                Some(mut guard) => {
                    for task in self.insert_buffer.drain(..) {
                        guard.push(task);
                    }
                    return;
                }
                None => self.stats.contention_retries += 1,
            }
        }
    }

    /// Acquires both sampled queues (retrying on contention), compares their
    /// tops, and extracts up to `batch` tasks from the better one.  The
    /// first extracted task is returned; the rest go to the delete buffer.
    fn pop_two_choice(&mut self, batch: usize) -> Option<T> {
        let parent = self.parent;
        loop {
            let (q1, q2) = self.sample_two_distinct();
            let guard1 = match parent.queues[q1].try_lock() {
                Some(g) => g,
                None => {
                    self.stats.contention_retries += 1;
                    continue;
                }
            };
            let guard2 = match parent.queues[q2].try_lock() {
                Some(g) => g,
                None => {
                    drop(guard1);
                    self.stats.contention_retries += 1;
                    continue;
                }
            };
            return self.extract_from_better(guard1, guard2, batch);
        }
    }

    /// Given both locked queues, picks the one whose top task has higher
    /// priority and extracts a batch from it.
    fn extract_from_better<'g>(
        &mut self,
        mut guard1: MutexGuard<'g, DAryHeap<T>>,
        mut guard2: MutexGuard<'g, DAryHeap<T>>,
        batch: usize,
    ) -> Option<T> {
        let use_first = match (guard1.peek(), guard2.peek()) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let source = if use_first { &mut guard1 } else { &mut guard2 };
        self.extract_batch(source, batch)
    }

    /// Extracts up to `batch` tasks from a locked queue, returning the first.
    fn extract_batch(&mut self, queue: &mut DAryHeap<T>, batch: usize) -> Option<T> {
        let first = queue.pop()?;
        for _ in 1..batch {
            match queue.pop() {
                Some(task) => self.delete_buffer.push_back(task),
                None => break,
            }
        }
        Some(first)
    }

    /// Pops from the temporally "current" queue, re-selecting it via the
    /// two-choice rule with the configured probability or when it runs dry.
    fn pop_temporal(&mut self, change: smq_core::Probability) -> Option<T> {
        let needs_new = self.tl_delete_queue.is_none() || change.sample(&mut self.rng);
        if !needs_new {
            let q = self.tl_delete_queue.expect("checked above");
            let mut guard = self.parent.queues[q].lock();
            if let Some(task) = guard.pop() {
                return Some(task);
            }
            // Current queue ran dry: fall through to a fresh selection.
        }
        // Select a new current queue with the classic two-choice rule and
        // remember which queue the task came from.
        loop {
            let (q1, q2) = self.sample_two_distinct();
            let guard1 = match self.parent.queues[q1].try_lock() {
                Some(g) => g,
                None => {
                    self.stats.contention_retries += 1;
                    continue;
                }
            };
            let guard2 = match self.parent.queues[q2].try_lock() {
                Some(g) => g,
                None => {
                    drop(guard1);
                    self.stats.contention_retries += 1;
                    continue;
                }
            };
            let use_first = match (guard1.peek(), guard2.peek()) {
                (Some(a), Some(b)) => a <= b,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            let (mut chosen_guard, chosen_q) = if use_first {
                drop(guard2);
                (guard1, q1)
            } else {
                drop(guard1);
                (guard2, q2)
            };
            self.tl_delete_queue = Some(chosen_q);
            return chosen_guard.pop();
        }
    }
}

impl<T: Ord + Send> SchedulerHandle<T> for MultiQueueHandle<'_, T> {
    fn push(&mut self, task: T) {
        self.stats.pushes += 1;
        match self.parent.config.insert {
            InsertPolicy::Direct => self.push_direct(task),
            InsertPolicy::TemporalLocality(p) => self.push_temporal(task, p),
            InsertPolicy::Batching(batch) => {
                self.insert_buffer.push(task);
                if self.insert_buffer.len() >= batch {
                    self.flush_insert_buffer();
                }
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        if let Some(task) = self.delete_buffer.pop_front() {
            self.stats.pops += 1;
            return Some(task);
        }
        let got = match self.parent.config.delete {
            DeletePolicy::TwoChoice => self.pop_two_choice(1),
            DeletePolicy::TemporalLocality(p) => self.pop_temporal(p),
            DeletePolicy::Batching(batch) => self.pop_two_choice(batch),
        };
        match got {
            Some(task) => {
                self.stats.pops += 1;
                Some(task)
            }
            None => {
                self.stats.empty_pops += 1;
                None
            }
        }
    }

    fn flush(&mut self) {
        self.flush_insert_buffer();
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smq_core::{Probability, Task};

    fn drain_all<T: Ord + Send + Copy>(handle: &mut MultiQueueHandle<'_, T>) -> Vec<T> {
        // Relaxed schedulers may need several attempts to find the last
        // tasks; an empty result 64 times in a row means truly empty for a
        // single-threaded test.
        let mut out = Vec::new();
        let mut misses = 0;
        while misses < 64 {
            match handle.pop() {
                Some(t) => {
                    out.push(t);
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        out
    }

    fn conserves_elements(config: MultiQueueConfig) {
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(0);
        let n = 500u64;
        for v in 0..n {
            handle.push(v);
        }
        handle.flush();
        let mut drained = drain_all(&mut handle);
        drained.sort_unstable();
        assert_eq!(drained, (0..n).collect::<Vec<_>>());
        assert!(mq.is_empty());
        let stats = handle.stats();
        assert_eq!(stats.pushes, n);
        assert_eq!(stats.pops, n);
    }

    #[test]
    fn classic_conserves_elements() {
        conserves_elements(MultiQueueConfig::classic(2));
    }

    #[test]
    fn batching_insert_conserves_elements() {
        conserves_elements(
            MultiQueueConfig::classic(2).with_insert(InsertPolicy::Batching(16)),
        );
    }

    #[test]
    fn batching_delete_conserves_elements() {
        conserves_elements(
            MultiQueueConfig::classic(2).with_delete(DeletePolicy::Batching(8)),
        );
    }

    #[test]
    fn temporal_locality_conserves_elements() {
        conserves_elements(
            MultiQueueConfig::classic(2)
                .with_insert(InsertPolicy::TemporalLocality(Probability::new(4)))
                .with_delete(DeletePolicy::TemporalLocality(Probability::new(4))),
        );
    }

    #[test]
    fn numa_variant_conserves_elements_and_tracks_locality() {
        let config = MultiQueueConfig::classic(4)
            .with_numa(Topology::split(4, 2), 16)
            .with_seed(11);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(1);
        for v in 0..200u64 {
            handle.push(v);
        }
        let drained = drain_all(&mut handle);
        assert_eq!(drained.len(), 200);
        let stats = handle.stats();
        assert!(stats.local_node_accesses > 0);
        // K = 16 strongly biases towards the local node.
        assert!(stats.local_node_accesses > stats.remote_node_accesses);
    }

    #[test]
    fn two_choice_prefers_higher_priority_top() {
        // With exactly two queues and deterministic contents, the two-choice
        // delete must return the global minimum.
        let config = MultiQueueConfig::classic(1).with_c_factor(2).with_seed(3);
        let mq: MultiQueue<Task> = MultiQueue::new(config);
        // Manually place tasks into both queues.
        mq.queues[0].lock().push(Task::new(50, 0));
        mq.queues[1].lock().push(Task::new(10, 1));
        let mut handle = mq.handle(0);
        assert_eq!(handle.pop(), Some(Task::new(10, 1)));
        assert_eq!(handle.pop(), Some(Task::new(50, 0)));
        assert_eq!(handle.pop(), None);
    }

    #[test]
    fn delete_batching_prefetches_in_priority_order() {
        let config = MultiQueueConfig::classic(1)
            .with_c_factor(2)
            .with_delete(DeletePolicy::Batching(4))
            .with_seed(5);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        // All tasks in one queue so a single batch grabs the four smallest.
        {
            let mut q = mq.queues[0].lock();
            for v in [9u64, 3, 7, 1, 5] {
                q.push(v);
            }
        }
        let mut handle = mq.handle(0);
        assert_eq!(handle.pop(), Some(1));
        // The next three come from the prefetch buffer in ascending order,
        // without touching the shared queues.
        assert_eq!(handle.delete_buffer.len(), 3);
        assert_eq!(handle.pop(), Some(3));
        assert_eq!(handle.pop(), Some(5));
        assert_eq!(handle.pop(), Some(7));
        assert_eq!(handle.pop(), Some(9));
    }

    #[test]
    fn insert_batching_defers_until_flush_or_full() {
        let config = MultiQueueConfig::classic(2)
            .with_insert(InsertPolicy::Batching(8))
            .with_seed(6);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let mut handle = mq.handle(0);
        for v in 0..5u64 {
            handle.push(v);
        }
        // Fewer than the batch size: nothing visible in the shared queues.
        assert!(mq.is_empty());
        handle.flush();
        assert_eq!(mq.len(), 5);
        for v in 5..13u64 {
            handle.push(v);
        }
        // Crossing the batch size triggered an automatic flush.
        assert!(mq.len() >= 13 - 5);
    }

    #[test]
    fn concurrent_push_pop_conserves_elements() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let threads = 4;
        let per_thread = 5_000u64;
        let config = MultiQueueConfig::classic(threads).with_seed(8);
        let mq: MultiQueue<u64> = MultiQueue::new(config);
        let popped = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let mq = &mq;
                let popped = &popped;
                let sum = &sum;
                s.spawn(move || {
                    let mut handle = mq.handle(tid);
                    for i in 0..per_thread {
                        handle.push(tid as u64 * per_thread + i);
                    }
                    handle.flush();
                    loop {
                        match handle.pop() {
                            Some(v) => {
                                popped.fetch_add(1, Ordering::Relaxed);
                                sum.fetch_add(v, Ordering::Relaxed);
                            }
                            None => break,
                        }
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        // Every thread pops until it sees two empty samples; collectively
        // they must have removed everything that is not still in a queue.
        let remaining = mq.len() as u64;
        assert_eq!(popped.load(Ordering::Relaxed) + remaining, total);
        // Finish draining single-threaded and check the value sum.  A single
        // None is not "empty" for a relaxed scheduler (both sampled queues
        // may happen to be empty), so tolerate a run of misses.
        let mut handle = mq.handle(0);
        let mut misses = 0;
        while misses < 64 {
            match handle.pop() {
                Some(v) => {
                    sum.fetch_add(v, Ordering::Relaxed);
                    popped.fetch_add(1, Ordering::Relaxed);
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        assert_eq!(popped.load(Ordering::Relaxed), total);
        assert!(mq.is_empty());
        assert_eq!(sum.load(Ordering::Relaxed), total * (total - 1) / 2);
    }
}
