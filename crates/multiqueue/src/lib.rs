//! The classic Multi-Queue priority scheduler and its optimised variants.
//!
//! These are the baselines the paper starts from (Section 2.1 and
//! Appendices C/E):
//!
//! * [`MultiQueue`] — `C·T` lock-protected sequential heaps; `insert` places
//!   the task into a uniformly random queue, `delete` samples two distinct
//!   queues and removes the higher-priority top (Listing 1).
//! * **Task batching** (`Optimization 1`) — inserts are buffered
//!   thread-locally and flushed in bulk; deletes extract a whole batch from
//!   the chosen queue.
//! * **Temporal locality** (`Optimization 2`) — a biased coin decides whether
//!   to keep using the queue from the previous operation.
//! * **NUMA-aware sampling** (Section 4) — queues owned by the calling
//!   thread's node are sampled with weight 1, remote queues with weight
//!   `1/K`.
//! * [`Reld`] — the random-enqueue local-dequeue scheduler from Jeffrey et
//!   al. \[14\], another Figure 2 baseline.
//!
//! All variants are driven by a single [`MultiQueueConfig`], so the
//! benchmark harness can sweep the exact parameter grids of the paper's
//! appendix tables.

#![warn(missing_docs)]

pub mod config;
pub mod queue;
pub mod reld;

pub use config::{DeletePolicy, InsertPolicy, MultiQueueConfig, NumaConfig};
pub use queue::{MultiQueue, MultiQueueHandle};
pub use reld::{Reld, ReldHandle};
