//! Configuration for the Multi-Queue family.

use smq_core::Probability;
use smq_runtime::Topology;

/// How `insert` chooses a target queue (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertPolicy {
    /// The classic behaviour: every insert picks a fresh uniformly random
    /// queue (Listing 1).
    Direct,
    /// Temporal locality: before each insert, change the "current" queue
    /// with the given probability, otherwise keep inserting into the queue
    /// used by the previous operation.
    TemporalLocality(Probability),
    /// Task batching: buffer up to `batch` tasks thread-locally and flush
    /// the whole buffer into a single random queue once full.
    Batching(usize),
}

/// How `delete` chooses a source queue (Section 2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletePolicy {
    /// The classic two-choice behaviour: sample two distinct queues and pop
    /// from the one with the higher-priority top (Listing 1).
    TwoChoice,
    /// Temporal locality: change the "current" queue with the given
    /// probability (using a fresh two-choice sample), otherwise keep popping
    /// from the previous queue.
    TemporalLocality(Probability),
    /// Task batching: pick a queue by two-choice sampling and extract up to
    /// `batch` tasks at once into a thread-local buffer.
    Batching(usize),
}

/// NUMA-aware sampling configuration (Section 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaConfig {
    /// The (simulated) machine topology.
    pub topology: Topology,
    /// Weight divisor for out-of-node queues; `K = 1` disables the
    /// optimisation.
    pub k: u32,
}

/// Full configuration of a [`crate::MultiQueue`].
#[derive(Debug, Clone)]
pub struct MultiQueueConfig {
    /// Worker thread count `T`.
    pub threads: usize,
    /// Queue multiplicity `C`: the scheduler owns `C·T` queues (the paper
    /// sweeps `C` in `[2, 8]`, default 4).
    pub c_factor: usize,
    /// Arity of the per-queue sequential heaps.
    pub heap_arity: usize,
    /// Insert-side policy.
    pub insert: InsertPolicy,
    /// Delete-side policy.
    pub delete: DeletePolicy,
    /// Optional NUMA-aware sampling.
    pub numa: Option<NumaConfig>,
    /// Native `push_batch` runs larger than this are halved across *two*
    /// independently sampled sub-queues instead of dumped into one, keeping
    /// per-queue key distributions balanced under big batches while still
    /// paying at most two insert locks per batch.  Batches up to this size
    /// (default 16) keep the one-queue/one-lock fast path.
    pub batch_split: usize,
    /// Seed for the per-thread PRNGs (runs are reproducible for a fixed seed
    /// and thread interleaving).
    pub seed: u64,
}

impl MultiQueueConfig {
    /// The classic Multi-Queue of Listing 1 with `C = 4`.
    pub fn classic(threads: usize) -> Self {
        Self {
            threads,
            c_factor: 4,
            heap_arity: 4,
            insert: InsertPolicy::Direct,
            delete: DeletePolicy::TwoChoice,
            numa: None,
            batch_split: 16,
            seed: 0xC1A5_51C0,
        }
    }

    /// Sets the queue multiplicity `C`.
    pub fn with_c_factor(mut self, c: usize) -> Self {
        self.c_factor = c;
        self
    }

    /// Sets the insert policy.
    pub fn with_insert(mut self, policy: InsertPolicy) -> Self {
        self.insert = policy;
        self
    }

    /// Sets the delete policy.
    pub fn with_delete(mut self, policy: DeletePolicy) -> Self {
        self.delete = policy;
        self
    }

    /// Enables NUMA-aware sampling over `topology` with weight `K`.
    pub fn with_numa(mut self, topology: Topology, k: u32) -> Self {
        self.numa = Some(NumaConfig { topology, k });
        self
    }

    /// Enables NUMA-aware sampling with the paper's recommended scaling:
    /// `K` grows linearly with the thread count (`K = T`, clamped to at
    /// least 2) so the expected in-node access fraction stays constant as
    /// the fleet grows.
    pub fn with_numa_scaled(self, topology: Topology) -> Self {
        let k = topology.num_threads().max(2) as u32;
        self.with_numa(topology, k)
    }

    /// Sets the batch size above which native `push_batch` splits the run
    /// across two sampled sub-queues (see
    /// [`batch_split`](Self::batch_split)).
    pub fn with_batch_split(mut self, batch_split: usize) -> Self {
        self.batch_split = batch_split;
        self
    }

    /// Sets the PRNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of queues (`C·T`).
    pub fn num_queues(&self) -> usize {
        self.c_factor * self.threads
    }

    /// Validates parameter consistency, panicking on nonsensical values.
    pub fn validate(&self) {
        assert!(self.threads >= 1, "need at least one thread");
        assert!(self.c_factor >= 1, "need at least one queue per thread");
        assert!(
            self.num_queues() >= 2,
            "two-choice sampling needs at least two queues"
        );
        assert!(self.heap_arity >= 2, "heap arity must be >= 2");
        if let InsertPolicy::Batching(b) = self.insert {
            assert!(b >= 1, "insert batch size must be >= 1");
        }
        if let DeletePolicy::Batching(b) = self.delete {
            assert!(b >= 1, "delete batch size must be >= 1");
        }
        assert!(self.batch_split >= 1, "batch split threshold must be >= 1");
        if let Some(numa) = &self.numa {
            assert_eq!(
                numa.topology.num_threads(),
                self.threads,
                "topology thread count must match the scheduler's"
            );
            assert!(numa.k >= 1, "NUMA weight K must be >= 1");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_defaults() {
        let cfg = MultiQueueConfig::classic(8);
        cfg.validate();
        assert_eq!(cfg.num_queues(), 32);
        assert_eq!(cfg.insert, InsertPolicy::Direct);
        assert_eq!(cfg.delete, DeletePolicy::TwoChoice);
        assert!(cfg.numa.is_none());
    }

    #[test]
    fn builder_chain() {
        let cfg = MultiQueueConfig::classic(4)
            .with_c_factor(2)
            .with_insert(InsertPolicy::Batching(16))
            .with_delete(DeletePolicy::TemporalLocality(Probability::new(8)))
            .with_numa(Topology::split(4, 2), 64)
            .with_seed(7);
        cfg.validate();
        assert_eq!(cfg.num_queues(), 8);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.numa.as_ref().unwrap().k, 64);
    }

    #[test]
    fn scaled_numa_tracks_thread_count() {
        let cfg = MultiQueueConfig::classic(8).with_numa_scaled(Topology::split(8, 2));
        cfg.validate();
        assert_eq!(cfg.numa.as_ref().unwrap().k, 8);
        // Tiny fleets still get a meaningful remote penalty.
        let tiny = MultiQueueConfig::classic(1)
            .with_c_factor(2)
            .with_numa_scaled(Topology::single_node(1));
        assert_eq!(tiny.numa.as_ref().unwrap().k, 2);
    }

    #[test]
    fn batch_split_default_and_builder() {
        let cfg = MultiQueueConfig::classic(4);
        assert_eq!(cfg.batch_split, 16);
        let cfg = cfg.with_batch_split(64);
        cfg.validate();
        assert_eq!(cfg.batch_split, 64);
    }

    #[test]
    #[should_panic(expected = "batch split threshold")]
    fn zero_batch_split_rejected() {
        MultiQueueConfig::classic(2).with_batch_split(0).validate();
    }

    #[test]
    #[should_panic(expected = "at least two queues")]
    fn single_queue_rejected() {
        MultiQueueConfig::classic(1).with_c_factor(1).validate();
    }

    #[test]
    #[should_panic(expected = "topology thread count")]
    fn numa_topology_mismatch_rejected() {
        MultiQueueConfig::classic(4)
            .with_numa(Topology::split(8, 2), 4)
            .validate();
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        MultiQueueConfig::classic(2)
            .with_insert(InsertPolicy::Batching(0))
            .validate();
    }
}
