//! RELD — the Random-Enqueue Local-Dequeue scheduler.
//!
//! Described by Jeffrey et al. ("A scalable architecture for ordered
//! parallelism", MICRO'15) and used by the paper as a Figure 2 baseline:
//! tasks are inserted into a uniformly random queue (spreading load), but
//! each thread removes from its *own* queues, falling back to a random
//! remote queue only when its local queues are empty.  Compared with the
//! Multi-Queue this saves the second sample on deletes, at the price of
//! removing the two-choice rank guarantee.

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use smq_core::rng::Pcg32;
use smq_core::{OpStats, Scheduler, SchedulerHandle};
use smq_dheap::DAryHeap;

/// The RELD scheduler: `C·T` locked heaps, random enqueue, local dequeue.
pub struct Reld<T> {
    queues: Vec<CachePadded<Mutex<DAryHeap<T>>>>,
    threads: usize,
    c_factor: usize,
    seed: u64,
}

impl<T: Ord> Reld<T> {
    /// Creates a RELD scheduler for `threads` workers with `c_factor` queues
    /// per thread (the same `C` as the Multi-Queue; queue `q` is owned by
    /// thread `q % threads`).
    pub fn new(threads: usize, c_factor: usize, seed: u64) -> Self {
        assert!(threads >= 1 && c_factor >= 1);
        assert!(threads * c_factor >= 2, "need at least two queues");
        Self {
            queues: (0..threads * c_factor)
                .map(|_| CachePadded::new(Mutex::new(DAryHeap::new(4))))
                .collect(),
            threads,
            c_factor,
            seed,
        }
    }

    /// Total number of queues.
    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    /// Sum of all queue lengths (exact only when quiescent).
    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.lock().len()).sum()
    }

    /// `true` when every queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.lock().is_empty())
    }
}

impl<T: Ord + Send> Scheduler<T> for Reld<T> {
    type Handle<'a>
        = ReldHandle<'a, T>
    where
        T: 'a;

    fn num_threads(&self) -> usize {
        self.threads
    }

    fn handle(&self, thread_id: usize) -> ReldHandle<'_, T> {
        assert!(thread_id < self.threads);
        ReldHandle {
            parent: self,
            thread_id,
            rng: Pcg32::for_thread(self.seed, thread_id),
            stats: OpStats::default(),
        }
    }
}

/// A worker thread's handle onto a [`Reld`] scheduler.
pub struct ReldHandle<'a, T> {
    parent: &'a Reld<T>,
    thread_id: usize,
    rng: Pcg32,
    stats: OpStats,
}

impl<T: Ord + Send> SchedulerHandle<T> for ReldHandle<'_, T> {
    fn push(&mut self, task: T) {
        self.stats.pushes += 1;
        let mut task = Some(task);
        loop {
            let q = self.rng.next_bounded(self.parent.queues.len());
            match self.parent.queues[q].try_lock() {
                Some(mut guard) => {
                    guard.push(task.take().expect("present until pushed"));
                    return;
                }
                None => self.stats.contention_retries += 1,
            }
        }
    }

    fn pop(&mut self) -> Option<T> {
        // Local dequeue: pop from the first non-empty queue owned by this
        // thread.  RELD does no cross-queue priority comparison — that is
        // exactly the relaxation that distinguishes it from the Multi-Queue.
        for k in 0..self.parent.c_factor {
            let q = k * self.parent.threads + self.thread_id;
            if let Some(task) = self.parent.queues[q].lock().pop() {
                self.stats.pops += 1;
                return Some(task);
            }
        }
        // Local queues are empty: steal from one random queue.
        self.stats.steal_attempts += 1;
        let q = self.rng.next_bounded(self.parent.queues.len());
        let got = self.parent.queues[q].lock().pop();
        match got {
            Some(task) => {
                self.stats.steal_successes += 1;
                self.stats.stolen_tasks += 1;
                self.stats.pops += 1;
                Some(task)
            }
            None => {
                self.stats.empty_pops += 1;
                None
            }
        }
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conserves_elements_single_thread() {
        let reld: Reld<u64> = Reld::new(2, 4, 1);
        let mut handle = reld.handle(0);
        for v in 0..300u64 {
            handle.push(v);
        }
        let mut drained = Vec::new();
        let mut misses = 0;
        while misses < 64 {
            match handle.pop() {
                Some(v) => {
                    drained.push(v);
                    misses = 0;
                }
                None => misses += 1,
            }
        }
        drained.sort_unstable();
        assert_eq!(drained, (0..300).collect::<Vec<_>>());
        assert!(reld.is_empty());
    }

    #[test]
    fn local_dequeue_prefers_own_queue() {
        let reld: Reld<u64> = Reld::new(2, 1, 2);
        // Queue 0 belongs to thread 0, queue 1 to thread 1.
        reld.queues[0].lock().push(100);
        reld.queues[1].lock().push(1);
        let mut h0 = reld.handle(0);
        // Thread 0 takes from its own queue even though queue 1 has a
        // higher-priority task — that is exactly RELD's relaxation.
        assert_eq!(h0.pop(), Some(100));
    }

    #[test]
    fn steals_when_local_empty() {
        let reld: Reld<u64> = Reld::new(2, 1, 3);
        reld.queues[1].lock().push(7);
        let mut h0 = reld.handle(0);
        // Thread 0's queue is empty; it must eventually steal task 7.
        let mut got = None;
        for _ in 0..64 {
            if let Some(v) = h0.pop() {
                got = Some(v);
                break;
            }
        }
        assert_eq!(got, Some(7));
        assert!(h0.stats().stolen_tasks >= 1);
    }

    #[test]
    fn concurrent_usage_conserves_elements() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let threads = 4;
        let per_thread = 2_000u64;
        let reld: Reld<u64> = Reld::new(threads, 2, 4);
        let popped = AtomicU64::new(0);
        std::thread::scope(|s| {
            for tid in 0..threads {
                let reld = &reld;
                let popped = &popped;
                s.spawn(move || {
                    let mut handle = reld.handle(tid);
                    for i in 0..per_thread {
                        handle.push(i);
                    }
                    while handle.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        let remaining = reld.len() as u64;
        assert_eq!(
            popped.load(Ordering::Relaxed) + remaining,
            threads as u64 * per_thread
        );
    }
}
