//! Point-to-point routing with A* on a road network, using the SMQ as the
//! scheduler and the coordinate-based heuristic the paper describes.
//!
//! Run with: `cargo run --release --example astar_route`

use smq_repro::algos::{astar, sssp};
use smq_repro::core::Task;
use smq_repro::graph::generators::{road_network, RoadNetworkParams};
use smq_repro::smq::{HeapSmq, SmqConfig};

fn main() {
    let graph = road_network(RoadNetworkParams {
        width: 80,
        height: 80,
        removal_percent: 12,
        seed: 7,
    });
    let source = 0u32;
    let target = (graph.num_nodes() - 1) as u32;
    let threads = 4;

    // Exact references.
    let (dijkstra_dist, dijkstra_expanded) = sssp::sequential(&graph, source);
    let (astar_dist, astar_expanded) = astar::sequential(&graph, source, target);
    assert_eq!(astar_dist, dijkstra_dist[target as usize]);

    // Parallel A* over the SMQ.
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(threads));
    let run = astar::parallel(&graph, source, target, &smq, threads);
    assert_eq!(run.distance, astar_dist, "parallel A* must stay exact");

    println!(
        "route {} -> {} over {} vertices: distance {}",
        source,
        target,
        graph.num_nodes(),
        run.distance
    );
    println!("sequential Dijkstra expanded {dijkstra_expanded} vertices");
    println!("sequential A* expanded       {astar_expanded} vertices (heuristic pruning)");
    println!(
        "parallel A* on SMQ executed  {} tasks ({} useful, {} stale) in {:.2?} on {} threads",
        run.result.total_tasks(),
        run.result.useful_tasks,
        run.result.wasted_tasks,
        run.result.metrics.elapsed,
        threads,
    );
}
