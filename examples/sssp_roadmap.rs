//! SSSP on a synthetic road network, comparing the Stealing Multi-Queue
//! against the classic Multi-Queue and OBIM — a miniature of the paper's
//! Figure 2 experiment.
//!
//! Run with: `cargo run --release --example sssp_roadmap`

use smq_repro::algos::sssp;
use smq_repro::core::Task;
use smq_repro::graph::generators::{road_network, RoadNetworkParams};
use smq_repro::multiqueue::{MultiQueue, MultiQueueConfig};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::smq::{HeapSmq, SmqConfig};

fn main() {
    let graph = road_network(RoadNetworkParams {
        width: 64,
        height: 64,
        removal_percent: 10,
        seed: 42,
    });
    let threads = 4;
    println!(
        "road network: {} vertices, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let (reference, settled) = sssp::sequential(&graph, 0);
    println!("sequential Dijkstra settled {settled} vertices");

    // Stealing Multi-Queue (the paper's contribution).
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(threads));
    let smq_run = sssp::parallel(&graph, 0, &smq, threads);
    assert_eq!(smq_run.distances, reference, "SMQ produced wrong distances");

    // Classic Multi-Queue baseline.
    let mq: MultiQueue<Task> = MultiQueue::new(MultiQueueConfig::classic(threads));
    let mq_run = sssp::parallel(&graph, 0, &mq, threads);
    assert_eq!(mq_run.distances, reference);

    // OBIM heuristic baseline.
    let obim: Obim<Task> = Obim::new(ObimConfig::obim(threads, 10, 32));
    let obim_run = sssp::parallel(&graph, 0, &obim, threads);
    assert_eq!(obim_run.distances, reference);

    println!("\nscheduler           time        tasks   work increase");
    for (name, run) in [
        ("SMQ (heap)", &smq_run),
        ("classic Multi-Queue", &mq_run),
        ("OBIM", &obim_run),
    ] {
        println!(
            "{:<19} {:>9.2?} {:>8} {:>14.2}",
            name,
            run.result.metrics.elapsed,
            run.result.total_tasks(),
            run.result.work_increase(settled),
        );
    }
    println!("\nAll three schedulers computed identical shortest-path distances.");
}
