//! Empirical illustration of Theorem 1: how the rank of removed tasks
//! depends on the stealing probability and the batch size.
//!
//! Run with: `cargo run --release --example rank_guarantees`

use smq_repro::core::Probability;
use smq_repro::rank::{simulate, RankSimConfig};

fn main() {
    println!("Theorem 1 predicts E[avg rank] = O(n·B·(1+γ)/p_steal · log((1+γ)/p_steal)).\n");
    println!(
        "{:<6} {:<9} {:<4} {:>14} {:>14}",
        "n", "p_steal", "B", "avg top rank", "max top rank"
    );
    for &n in &[8usize, 16, 32] {
        for &p in &[1u32, 4, 16] {
            for &b in &[1usize, 8] {
                let config = RankSimConfig {
                    queues: n,
                    initial_tasks: 300_000,
                    batch: b,
                    p_steal: Probability::new(p),
                    gamma: 0.0,
                    steps: 10_000,
                    seed: 1,
                };
                let r = simulate(&config);
                println!(
                    "{:<6} {:<9} {:<4} {:>14.1} {:>14.1}",
                    n,
                    format!("1/{p}"),
                    b,
                    r.mean_top_rank,
                    r.mean_max_top_rank
                );
            }
        }
    }
    println!(
        "\nRank cost grows with n, with B, and as stealing becomes rarer — the Theorem 1 shape."
    );
}
