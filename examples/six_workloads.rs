//! Tour of the unified workload engine: all six workloads — SSSP, BFS, A*,
//! Borůvka MST, PageRank-delta, and k-core — running through the one
//! generic driver (`smq_algos::engine`) on the paper's default SMQ, each
//! checked against its own sequential reference.
//!
//! Run with: `cargo run --release --example six_workloads`

use smq_repro::algos::astar::AstarWorkload;
use smq_repro::algos::engine::{self, DecreaseKeyWorkload};
use smq_repro::algos::kcore::KCoreWorkload;
use smq_repro::algos::mst::BoruvkaWorkload;
use smq_repro::algos::pagerank::{PagerankConfig, PagerankWorkload};
use smq_repro::algos::sssp::SsspWorkload;
use smq_repro::core::Task;
use smq_repro::graph::generators::{power_law, road_network, PowerLawParams, RoadNetworkParams};
use smq_repro::smq::{HeapSmq, SmqConfig};

/// Runs one workload on a fresh SMQ and prints its one-line report card.
fn show<W: DecreaseKeyWorkload>(workload: &W, threads: usize) {
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(threads));
    let (run, reference) = engine::run_and_check(workload, &smq, threads);
    println!(
        "{:>9}  tasks {:>8} (useful {:>8}, wasted {:>7})  work-increase {:>5.2}  {:>8.2?}",
        workload.name(),
        run.result.total_tasks(),
        run.result.useful_tasks,
        run.result.wasted_tasks,
        run.result.work_increase(reference.baseline_tasks),
        run.result.metrics.elapsed,
    );
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get().min(4))
        .unwrap_or(2);
    let road = road_network(RoadNetworkParams {
        width: 48,
        height: 48,
        removal_percent: 10,
        seed: 7,
    });
    let social = power_law(PowerLawParams {
        nodes: 8_000,
        avg_degree: 10,
        exponent: 2.2,
        max_weight: 255,
        seed: 7,
    });
    let target = (road.num_nodes() - 1) as u32;

    println!("six workloads, one engine, {threads} threads — every run checked against its sequential reference\n");
    show(&SsspWorkload::new(&road, 0), threads);
    show(&SsspWorkload::bfs(&social, 0), threads);
    show(&AstarWorkload::new(&road, 0, target), threads);
    show(&BoruvkaWorkload::new(&road), threads);
    show(
        &PagerankWorkload::new(&social, PagerankConfig::default()),
        threads,
    );
    show(&KCoreWorkload::new(&social), threads);
}
