//! A miniature route-planning service: one resident scheduler fleet,
//! partitioned into gangs, serving a stream of point-to-point queries from
//! several clients **concurrently**.
//!
//! Run with: `cargo run --release --example route_service`
//!
//! The pieces, bottom to top:
//! * a shared road graph (`Arc<CsrGraph>`),
//! * a [`RouteQueryEngine`] with epoch-stamped g-score slots and one
//!   *lane* per concurrent query (per-query cost is O(touched vertices),
//!   no per-query allocation or reset pass),
//! * a [`WorkerPool`] that spawned its SMQ worker fleet exactly once,
//!   partitioned into gangs so each small query occupies one gang while
//!   the others serve different queries,
//! * a [`JobService`] bounded FIFO queue that many client threads submit
//!   into, each getting a ticket with per-job latency measurements (a
//!   `Result`: a panicking job loses only its own ticket, not the
//!   service).

use std::sync::Arc;

use smq_repro::algos::RouteQueryEngine;
use smq_repro::core::Task;
use smq_repro::graph::generators::{road_network, RoadNetworkParams};
use smq_repro::pool::{JobService, PoolConfig, ServiceConfig, WorkerPool};
use smq_repro::smq::{HeapSmq, SmqConfig};

fn main() {
    let gangs = 2;
    let gang_size = 2;
    let threads = gangs * gang_size;
    let clients = 3;
    let queries_per_client = 200;

    let graph = Arc::new(road_network(RoadNetworkParams {
        width: 64,
        height: 64,
        removal_percent: 10,
        seed: 2026,
    }));
    let n = graph.num_nodes() as u32;
    println!(
        "road graph: {} vertices, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );

    let engine = Arc::new(RouteQueryEngine::with_lanes(Arc::clone(&graph), gangs));
    let pool = WorkerPool::new_partitioned(
        |g| HeapSmq::<Task>::new(SmqConfig::default_for_threads(gang_size).with_seed(g as u64 + 1)),
        PoolConfig::partitioned(gangs, gang_size),
    );
    let service = Arc::new(JobService::new(
        pool,
        ServiceConfig {
            queue_capacity: 16,
            dispatchers: 0, // one dispatcher per gang
        },
    ));

    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = Arc::clone(&service);
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let mut worst = std::time::Duration::ZERO;
                for i in 0..queries_per_client {
                    let source = (client * 7919 + i * 131) as u32 % n;
                    let target = (client * 104729 + i * 337 + 1) as u32 % n;
                    let engine = Arc::clone(&engine);
                    let ticket = service
                        .submit(move |pool| engine.query(source, target, pool))
                        .expect("service open");
                    let done = ticket.wait().expect("query job completed");
                    worst = worst.max(done.total_latency());
                }
                println!("client {client}: {queries_per_client} routes, worst latency {worst:?}");
            });
        }
    });
    let elapsed = started.elapsed();

    let service = Arc::into_inner(service).expect("clients joined");
    let pool_stats = service.pool_stats();
    let stats = service.shutdown();
    let total = clients * queries_per_client;
    println!(
        "served {} queries in {:.2?} ({:.0} queries/sec) on {} resident workers \
         in {} gangs (threads spawned: {} — parked between jobs, never respawned)",
        stats.completed,
        elapsed,
        total as f64 / elapsed.as_secs_f64(),
        threads,
        gangs,
        pool_stats.threads_spawned,
    );
    assert_eq!(stats.completed, total as u64);
    assert_eq!(pool_stats.threads_spawned, threads as u64);
    assert_eq!(pool_stats.gangs_poisoned, 0);
}
