//! A miniature route-planning service over a **live** road graph: one
//! resident scheduler fleet, partitioned into gangs, serving a stream of
//! point-to-point queries from several clients concurrently — while an
//! updater thread publishes traffic slowdowns onto the shared graph.
//!
//! Run with: `cargo run --release --example route_service`
//!
//! The pieces, bottom to top:
//! * a shared **versioned** road graph (`LiveGraph` over an `Arc<CsrGraph>`
//!   base): writers batch-publish weight updates, readers pin immutable
//!   snapshots, compaction folds accumulated deltas back into CSR,
//! * a [`RouteQueryEngine`] generic over the graph source, with
//!   epoch-stamped g-score slots and one *lane* per concurrent query
//!   (per-query cost is O(touched vertices), no per-query allocation or
//!   reset pass); every query pins one version for its whole lifetime,
//! * a [`WorkerPool`] that spawned its SMQ worker fleet exactly once,
//!   partitioned into gangs so each small query occupies one gang while
//!   the others serve different queries,
//! * a [`JobService`] bounded FIFO queue that many client threads submit
//!   into, each getting a ticket with per-job latency measurements (a
//!   `Result`: a panicking job loses only its own ticket, not the
//!   service).
//!
//! Every 16th answer is re-derived with sequential A* **on the snapshot
//! the query pinned** — exactness under snapshot isolation, not against
//! the moving head.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smq_repro::algos::{astar, RouteQueryEngine};
use smq_repro::core::Task;
use smq_repro::graph::generators::{road_network, RoadNetworkParams};
use smq_repro::graph::{GraphUpdate, GraphView, LiveGraph};
use smq_repro::pool::{JobService, PoolConfig, ServiceConfig, WorkerPool};
use smq_repro::smq::{HeapSmq, SmqConfig};

fn main() {
    let gangs = 2;
    let gang_size = 2;
    let threads = gangs * gang_size;
    let clients = 3;
    let queries_per_client = 200;

    let base = Arc::new(road_network(RoadNetworkParams {
        width: 64,
        height: 64,
        removal_percent: 10,
        seed: 2026,
    }));
    let n = base.num_nodes() as u32;
    println!(
        "road graph: {} vertices, {} edges (live, versioned)",
        base.num_nodes(),
        base.num_edges()
    );

    let live = Arc::new(LiveGraph::new(Arc::clone(&base)));
    let engine = Arc::new(RouteQueryEngine::with_lanes(Arc::clone(&live), gangs));
    let pool = WorkerPool::new_partitioned(
        move |g| {
            HeapSmq::<Task>::new(SmqConfig::default_for_threads(gang_size).with_seed(g as u64 + 1))
        },
        PoolConfig::partitioned(gangs, gang_size),
    );
    let service = Arc::new(JobService::new(
        pool,
        ServiceConfig {
            queue_capacity: 16,
            dispatchers: 0, // one dispatcher per gang
        },
    ));

    let stop = AtomicBool::new(false);
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        // Traffic: batches of weight slowdowns (always scaled up from the
        // base weights, so the A* heuristic stays admissible on every
        // version) published while the queries run.
        let updater = {
            let live = Arc::clone(&live);
            let base = Arc::clone(&base);
            let stop = &stop;
            scope.spawn(move || {
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let updates = GraphUpdate::random_slowdowns(&*base, 32, 2026 + round, 6);
                    live.publish(&updates);
                    round += 1;
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                round
            })
        };
        let mut handles = Vec::new();
        for client in 0..clients {
            let service = Arc::clone(&service);
            let engine = Arc::clone(&engine);
            handles.push(scope.spawn(move || {
                let mut worst = std::time::Duration::ZERO;
                let mut max_version = 0u64;
                for i in 0..queries_per_client {
                    let source = (client * 7919 + i * 131) as u32 % n;
                    let target = (client * 104729 + i * 337 + 1) as u32 % n;
                    let engine = Arc::clone(&engine);
                    let ticket = service
                        .submit(move |pool| engine.query_pinned(source, target, pool))
                        .expect("service open");
                    let done = ticket.wait().expect("query job completed");
                    let (answer, view) = &done.output;
                    max_version = max_version.max(answer.version);
                    if i % 16 == 0 {
                        // Spot-check on the pinned snapshot: the version the
                        // query actually ran against, not the moving head.
                        let (expected, _) = astar::sequential(view, source, target);
                        assert_eq!(answer.distance, expected);
                    }
                    worst = worst.max(done.total_latency());
                }
                println!(
                    "client {client}: {queries_per_client} routes, worst latency {worst:?}, \
                     newest version served {max_version}"
                );
            }));
        }
        for handle in handles {
            handle.join().expect("client thread");
        }
        stop.store(true, Ordering::Relaxed);
        let rounds = updater.join().expect("updater thread");
        println!(
            "updater: {rounds} batches published, head at version {}, {} compactions",
            live.current_version(),
            live.compactions()
        );
    });
    let elapsed = started.elapsed();

    let service = Arc::into_inner(service).expect("clients joined");
    let pool_stats = service.pool_stats();
    let stats = service.shutdown();
    let total = clients * queries_per_client;
    println!(
        "served {} queries in {:.2?} ({:.0} queries/sec) on {} resident workers \
         in {} gangs (threads spawned: {} — parked between jobs, never respawned)",
        stats.completed,
        elapsed,
        total as f64 / elapsed.as_secs_f64(),
        threads,
        gangs,
        pool_stats.threads_spawned,
    );
    assert_eq!(stats.completed, total as u64);
    assert_eq!(pool_stats.threads_spawned, threads as u64);
    assert_eq!(pool_stats.gangs_poisoned, 0);
}
