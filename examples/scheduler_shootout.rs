//! A small scheduler shoot-out on a power-law ("social network") graph:
//! BFS and SSSP across every scheduler in the workspace.
//!
//! Run with: `cargo run --release --example scheduler_shootout`

use smq_repro::algos::{bfs, sssp};
use smq_repro::core::{Probability, Task};
use smq_repro::graph::generators::{power_law, PowerLawParams};
use smq_repro::multiqueue::{MultiQueue, MultiQueueConfig, Reld};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::smq::{HeapSmq, SkipListSmq, SmqConfig};
use smq_repro::spraylist::{SprayList, SprayListConfig};

fn main() {
    let graph = power_law(PowerLawParams {
        nodes: 20_000,
        avg_degree: 16,
        exponent: 2.2,
        max_weight: 255,
        seed: 3,
    });
    let threads = 4;
    println!(
        "power-law graph: {} vertices, {} edges, max degree {}\n",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );
    let (sssp_ref, sssp_settled) = sssp::sequential(&graph, 0);
    let (bfs_ref, _) = bfs::sequential(&graph, 0);

    println!(
        "{:<18} {:>12} {:>12} {:>16}",
        "scheduler", "SSSP time", "BFS time", "SSSP work incr."
    );

    macro_rules! shoot {
        ($name:expr, $make:expr) => {{
            let sched = $make;
            let s = sssp::parallel(&graph, 0, &sched, threads);
            assert_eq!(s.distances, sssp_ref, "{} computed wrong SSSP", $name);
            drop(sched);
            let sched = $make;
            let b = bfs::parallel(&graph, 0, &sched, threads);
            assert_eq!(b.levels, bfs_ref, "{} computed wrong BFS", $name);
            println!(
                "{:<18} {:>12.2?} {:>12.2?} {:>16.2}",
                $name,
                s.result.metrics.elapsed,
                b.result.metrics.elapsed,
                s.result.work_increase(sssp_settled)
            );
        }};
    }

    shoot!(
        "SMQ (heap)",
        HeapSmq::<Task>::new(SmqConfig::default_for_threads(threads))
    );
    shoot!(
        "SMQ (skip list)",
        SkipListSmq::<Task>::new(
            SmqConfig::default_for_threads(threads).with_p_steal(Probability::new(8))
        )
    );
    shoot!(
        "Multi-Queue",
        MultiQueue::<Task>::new(MultiQueueConfig::classic(threads))
    );
    shoot!("RELD", Reld::<Task>::new(threads, 4, 9));
    shoot!("OBIM", Obim::<Task>::new(ObimConfig::obim(threads, 8, 32)));
    shoot!("PMOD", Obim::<Task>::new(ObimConfig::pmod(threads, 8, 32)));
    shoot!(
        "SprayList",
        SprayList::<Task>::new(SprayListConfig::default_for_threads(threads))
    );
    println!("\nEvery scheduler produced identical SSSP distances and BFS levels.");
}
