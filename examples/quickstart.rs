//! Quickstart: use the Stealing Multi-Queue as a concurrent priority
//! scheduler directly, then through the parallel executor.
//!
//! Run with: `cargo run --release --example quickstart`

use smq_repro::core::{Scheduler, SchedulerHandle, Task};
use smq_repro::runtime::{run, ExecutorConfig};
use smq_repro::smq::{HeapSmq, SmqConfig};

fn main() {
    // --- 1. Direct use: one thread, exact priority order. ------------------
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(1));
    let mut handle = smq.handle(0);
    for (key, payload) in [(30u64, 0u64), (10, 1), (20, 2)] {
        handle.push(Task::new(key, payload));
    }
    print!("single-threaded pops:");
    while let Some(task) = handle.pop() {
        print!(" {}", task.key);
    }
    println!();
    drop(handle);

    // --- 2. Through the executor: 4 workers, a diamond of follow-up tasks. -
    // Every task below 1000 spawns two children; the run terminates when the
    // scheduler is globally empty.
    let threads = 4;
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(threads));
    let processed = std::sync::atomic::AtomicU64::new(0);
    let metrics = run(
        &smq,
        &ExecutorConfig::new(threads),
        (0..1_000u64).map(|i| Task::new(i, i)).collect(),
        |task, sink, _scratch| {
            processed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if task.key < 1_000 {
                sink.push(Task::new(task.key + 1_000, task.value));
                sink.push(Task::new(task.key + 2_000, task.value));
            }
        },
    );
    println!(
        "executor processed {} tasks on {} threads in {:.2?} ({} steals across threads)",
        metrics.tasks_executed, metrics.threads, metrics.elapsed, metrics.total.steal_successes,
    );
    assert_eq!(metrics.tasks_executed, 3_000);
}
