//! Integration tests for the *quality* side of the paper's claims: the SMQ's
//! stealing keeps priority relaxation (and therefore wasted work) bounded,
//! and the rank-model simulator agrees qualitatively with the schedulers'
//! measured wasted work.

use smq_repro::algos::sssp;
use smq_repro::core::{Probability, Task};
use smq_repro::graph::generators::{road_network, RoadNetworkParams};
use smq_repro::rank::{simulate, RankSimConfig};
use smq_repro::smq::{HeapSmq, SmqConfig};

#[test]
fn more_stealing_means_less_wasted_work_on_road_sssp() {
    // Wasted work in SSSP is driven by priority inversions; Theorem 1 says
    // inversions grow as stealing becomes rarer.  Compare p_steal = 1/2
    // against p_steal = 1/256 on a road graph, same thread count and seeds.
    let graph = road_network(RoadNetworkParams {
        width: 40,
        height: 40,
        removal_percent: 10,
        seed: 5,
    });
    let threads = 4;
    let (_, settled) = sssp::sequential(&graph, 0);

    let run_with = |p: u32, seed: u64| {
        let smq: HeapSmq<Task> = HeapSmq::new(
            SmqConfig::default_for_threads(threads)
                .with_p_steal(Probability::new(p))
                .with_steal_size(1)
                .with_seed(seed),
        );
        sssp::parallel(&graph, 0, &smq, threads)
            .result
            .work_increase(settled)
    };

    // Average over several seeds to damp scheduling noise, and only assert
    // the direction with generous slack — per-run wasted work depends on
    // thread interleaving.
    let seeds = [1u64, 2, 3, 4, 5, 6, 7, 8];
    let frequent: f64 = seeds.iter().map(|&s| run_with(2, s)).sum::<f64>() / seeds.len() as f64;
    let rare: f64 = seeds.iter().map(|&s| run_with(256, s)).sum::<f64>() / seeds.len() as f64;
    assert!(
        rare >= frequent * 0.8,
        "rare stealing should not waste less work: frequent {frequent:.3}, rare {rare:.3}"
    );
}

#[test]
fn rank_model_and_scheduler_agree_on_batching_direction() {
    // The analytical model says larger batches increase rank cost; the
    // schedulers should show the same direction in wasted work (larger
    // steal batches => more relaxation).  This ties the theory crate to the
    // implementation crate.
    let model_small = simulate(&RankSimConfig {
        batch: 1,
        ..RankSimConfig::default()
    });
    let model_large = simulate(&RankSimConfig {
        batch: 32,
        ..RankSimConfig::default()
    });
    assert!(model_large.mean_removed_rank > model_small.mean_removed_rank);

    let graph = road_network(RoadNetworkParams {
        width: 40,
        height: 40,
        removal_percent: 10,
        seed: 8,
    });
    let threads = 4;
    let (_, settled) = sssp::sequential(&graph, 0);
    // Wasted work on a real multi-threaded run is interleaving-dependent,
    // so average over several seeds and allow generous slack: the assertion
    // only guards the *direction* (huge batches must not systematically
    // reduce waste), not a precise ratio.
    let work_with = |steal_size: usize| {
        let seeds = [11u64, 12, 13, 14, 15, 16, 17, 18];
        seeds
            .iter()
            .map(|&s| {
                let smq: HeapSmq<Task> = HeapSmq::new(
                    SmqConfig::default_for_threads(threads)
                        .with_steal_size(steal_size)
                        .with_p_steal(Probability::new(2))
                        .with_seed(s),
                );
                sssp::parallel(&graph, 0, &smq, threads)
                    .result
                    .work_increase(settled)
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let small = work_with(1);
    let large = work_with(256);
    assert!(
        large >= small * 0.8,
        "very large steal batches should not reduce wasted work: small {small:.3}, large {large:.3}"
    );
}

#[test]
fn smq_wasted_work_is_modest_at_default_parameters() {
    // Figure 2's qualitative claim: at the default parameters the SMQ's work
    // increase over the sequential baseline stays small on road SSSP.
    let graph = road_network(RoadNetworkParams {
        width: 48,
        height: 48,
        removal_percent: 10,
        seed: 21,
    });
    let (_, settled) = sssp::sequential(&graph, 0);
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(4).with_seed(2));
    let run = sssp::parallel(&graph, 0, &smq, 4);
    let increase = run.result.work_increase(settled);
    assert!(
        increase < 2.0,
        "work increase {increase:.2} is implausibly high for default SMQ parameters"
    );
}
