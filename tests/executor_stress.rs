//! Integration stress tests for the executor + scheduler combination:
//! termination detection and task conservation under irregular task graphs.

use std::sync::atomic::{AtomicU64, Ordering};

use smq_repro::core::{Probability, Task};
use smq_repro::multiqueue::{MultiQueue, MultiQueueConfig};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::runtime::{run, ExecutorConfig};
use smq_repro::smq::{HeapSmq, SmqConfig};

/// A synthetic irregular workload: every task of "depth" d < MAX_DEPTH
/// spawns a pseudo-random number of children (0..=2), so the task graph's
/// shape is unpredictable and the pending-task counter is genuinely
/// exercised.  Returns the number of tasks the workload should execute,
/// computed independently by a sequential simulation.
fn expected_task_count(seed_tasks: u64, max_depth: u64) -> u64 {
    let mut count = 0u64;
    let mut stack: Vec<(u64, u64)> = (0..seed_tasks).map(|i| (i, 0u64)).collect();
    while let Some((id, depth)) = stack.pop() {
        count += 1;
        if depth < max_depth {
            for c in 0..children_of(id, depth) {
                stack.push((id.wrapping_mul(31).wrapping_add(c), depth + 1));
            }
        }
    }
    count
}

fn children_of(id: u64, depth: u64) -> u64 {
    // Deterministic pseudo-random fan-out in 0..=2.
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(depth as u32) >> 61) % 3
}

fn run_irregular<S: smq_repro::core::Scheduler<Task>>(scheduler: &S, threads: usize) -> u64 {
    const SEEDS: u64 = 500;
    const MAX_DEPTH: u64 = 12;
    let executed = AtomicU64::new(0);
    let metrics = run(
        scheduler,
        &ExecutorConfig::new(threads),
        (0..SEEDS).map(|i| Task::new(0, i)).collect(),
        |task, sink| {
            executed.fetch_add(1, Ordering::Relaxed);
            let depth = task.key;
            let id = task.value;
            if depth < MAX_DEPTH {
                for c in 0..children_of(id, depth) {
                    let child_id = id.wrapping_mul(31).wrapping_add(c);
                    sink.push(Task::new(depth + 1, child_id));
                }
            }
        },
    );
    assert_eq!(metrics.tasks_executed, executed.load(Ordering::Relaxed));
    metrics.tasks_executed
}

#[test]
fn irregular_workload_on_smq_executes_every_task() {
    let expected = expected_task_count(500, 12);
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(4).with_seed(1));
    assert_eq!(run_irregular(&smq, 4), expected);
}

#[test]
fn irregular_workload_on_multiqueue_executes_every_task() {
    let expected = expected_task_count(500, 12);
    let mq: MultiQueue<Task> = MultiQueue::new(MultiQueueConfig::classic(3).with_seed(2));
    assert_eq!(run_irregular(&mq, 3), expected);
}

#[test]
fn irregular_workload_on_obim_executes_every_task() {
    let expected = expected_task_count(500, 12);
    let obim: Obim<Task> = Obim::new(ObimConfig::obim(2, 3, 8));
    assert_eq!(run_irregular(&obim, 2), expected);
}

#[test]
fn smq_with_always_steal_terminates_under_contention() {
    // p_steal = 1 maximizes cross-thread interaction on the stealing
    // buffers; the run must still terminate and conserve tasks.
    let expected = expected_task_count(500, 12);
    let smq: HeapSmq<Task> = HeapSmq::new(
        SmqConfig::default_for_threads(4)
            .with_p_steal(Probability::ALWAYS)
            .with_steal_size(1)
            .with_seed(3),
    );
    assert_eq!(run_irregular(&smq, 4), expected);
}

#[test]
fn single_worker_runs_are_supported_by_every_scheduler() {
    let expected = expected_task_count(500, 12);
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(1));
    assert_eq!(run_irregular(&smq, 1), expected);
    let obim: Obim<Task> = Obim::new(ObimConfig::pmod(1, 4, 16));
    assert_eq!(run_irregular(&obim, 1), expected);
}
