//! Integration stress tests for the executor + scheduler combination:
//! termination detection and task conservation under irregular task graphs.

use std::sync::atomic::{AtomicU64, Ordering};

use smq_repro::core::{Probability, Task};
use smq_repro::multiqueue::{MultiQueue, MultiQueueConfig};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::runtime::{run, ExecutorConfig};
use smq_repro::smq::{HeapSmq, SmqConfig};

/// A synthetic irregular workload: every task of "depth" d < MAX_DEPTH
/// spawns a pseudo-random number of children (0..=2), so the task graph's
/// shape is unpredictable and the pending-task counter is genuinely
/// exercised.  Returns the number of tasks the workload should execute,
/// computed independently by a sequential simulation.
fn expected_task_count(seed_tasks: u64, max_depth: u64) -> u64 {
    let mut count = 0u64;
    let mut stack: Vec<(u64, u64)> = (0..seed_tasks).map(|i| (i, 0u64)).collect();
    while let Some((id, depth)) = stack.pop() {
        count += 1;
        if depth < max_depth {
            for c in 0..children_of(id, depth) {
                stack.push((id.wrapping_mul(31).wrapping_add(c), depth + 1));
            }
        }
    }
    count
}

fn children_of(id: u64, depth: u64) -> u64 {
    // Deterministic pseudo-random fan-out in 0..=2.
    (id.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(depth as u32)
        >> 61)
        % 3
}

fn run_irregular<S: smq_repro::core::Scheduler<Task>>(scheduler: &S, threads: usize) -> u64 {
    const SEEDS: u64 = 500;
    const MAX_DEPTH: u64 = 12;
    let executed = AtomicU64::new(0);
    let metrics = run(
        scheduler,
        &ExecutorConfig::new(threads),
        (0..SEEDS).map(|i| Task::new(0, i)).collect(),
        |task, sink, _scratch| {
            executed.fetch_add(1, Ordering::Relaxed);
            let depth = task.key;
            let id = task.value;
            if depth < MAX_DEPTH {
                for c in 0..children_of(id, depth) {
                    let child_id = id.wrapping_mul(31).wrapping_add(c);
                    sink.push(Task::new(depth + 1, child_id));
                }
            }
        },
    );
    assert_eq!(metrics.tasks_executed, executed.load(Ordering::Relaxed));
    // The epoch-gated quiescence scan: every scan costs at least `scan_gate`
    // empty pops, so the scan count is bounded by empty_pops / gate — before
    // the gate, every empty pop ran a scan (scans == empty_pops).
    let gate = u64::from(ExecutorConfig::new(threads).worker.scan_gate);
    assert!(
        metrics.quiescence_scans * gate <= metrics.total.empty_pops,
        "scan traffic not gated: {} scans, {} empty pops, gate {}",
        metrics.quiescence_scans,
        metrics.total.empty_pops,
        gate
    );
    assert!(
        metrics.quiescence_scans >= threads as u64,
        "every worker exits through at least one successful scan"
    );
    metrics.tasks_executed
}

#[test]
fn irregular_workload_on_smq_executes_every_task() {
    let expected = expected_task_count(500, 12);
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(4).with_seed(1));
    assert_eq!(run_irregular(&smq, 4), expected);
}

#[test]
fn irregular_workload_on_multiqueue_executes_every_task() {
    let expected = expected_task_count(500, 12);
    let mq: MultiQueue<Task> = MultiQueue::new(MultiQueueConfig::classic(3).with_seed(2));
    assert_eq!(run_irregular(&mq, 3), expected);
}

#[test]
fn irregular_workload_on_obim_executes_every_task() {
    let expected = expected_task_count(500, 12);
    let obim: Obim<Task> = Obim::new(ObimConfig::obim(2, 3, 8));
    assert_eq!(run_irregular(&obim, 2), expected);
}

#[test]
fn smq_with_always_steal_terminates_under_contention() {
    // p_steal = 1 maximizes cross-thread interaction on the stealing
    // buffers; the run must still terminate and conserve tasks.
    let expected = expected_task_count(500, 12);
    let smq: HeapSmq<Task> = HeapSmq::new(
        SmqConfig::default_for_threads(4)
            .with_p_steal(Probability::ALWAYS)
            .with_steal_size(1)
            .with_seed(3),
    );
    assert_eq!(run_irregular(&smq, 4), expected);
}

#[test]
fn single_worker_runs_are_supported_by_every_scheduler() {
    let expected = expected_task_count(500, 12);
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(1));
    assert_eq!(run_irregular(&smq, 1), expected);
    let obim: Obim<Task> = Obim::new(ObimConfig::pmod(1, 4, 16));
    assert_eq!(run_irregular(&obim, 1), expected);
}

/// Fan-out of the uniquely-identified stress workload below: depends only
/// on depth so the total task count is computable without running.
fn stress_fanout(depth: u64) -> u64 {
    if depth.is_multiple_of(2) {
        2
    } else {
        1
    }
}

/// Tasks per seed in a tree of the given depth under [`stress_fanout`].
fn stress_tasks_per_seed(max_depth: u64) -> u64 {
    let mut total = 0u64;
    let mut level = 1u64;
    for depth in 0..=max_depth {
        total += level;
        if depth < max_depth {
            level *= stress_fanout(depth);
        }
    }
    total
}

/// Every task gets a *unique* dense id from a shared allocator and bumps its
/// own execution slot exactly once, so the test can prove the distributed
/// termination counters neither lose tasks (a slot left at 0 — the run
/// exited while work was outstanding) nor double-count them (a slot above 1
/// — a task was processed twice).
fn run_unique_id_stress<S: smq_repro::core::Scheduler<Task>>(scheduler: &S, threads: usize) {
    const SEEDS: u64 = 64;
    const MAX_DEPTH: u64 = 12;
    let total = SEEDS * stress_tasks_per_seed(MAX_DEPTH);
    let next_id = AtomicU64::new(SEEDS);
    let executions: Vec<AtomicU64> = (0..total).map(|_| AtomicU64::new(0)).collect();

    let metrics = smq_repro::runtime::run(
        scheduler,
        &smq_repro::runtime::ExecutorConfig::new(threads),
        (0..SEEDS).map(|i| Task::new(0, i)).collect(),
        |task, sink, _scratch| {
            let depth = task.key;
            let id = task.value;
            executions[id as usize].fetch_add(1, Ordering::Relaxed);
            if depth < MAX_DEPTH {
                for _ in 0..stress_fanout(depth) {
                    let child = next_id.fetch_add(1, Ordering::Relaxed);
                    sink.push(Task::new(depth + 1, child));
                }
            }
        },
    );

    assert_eq!(metrics.tasks_executed, total, "task count mismatch");
    assert_eq!(
        next_id.load(Ordering::Relaxed),
        total,
        "id allocator mismatch"
    );
    for (id, count) in executions.iter().enumerate() {
        let count = count.load(Ordering::Relaxed);
        assert_eq!(
            count, 1,
            "task {id} executed {count} times (0 = lost by termination detection, >1 = double-counted)"
        );
    }
}

#[test]
fn distributed_termination_loses_nothing_on_multiqueue() {
    let mq: MultiQueue<Task> = MultiQueue::new(MultiQueueConfig::classic(8).with_seed(21));
    run_unique_id_stress(&mq, 8);
}

#[test]
fn distributed_termination_loses_nothing_on_smq() {
    let smq: HeapSmq<Task> = HeapSmq::new(
        SmqConfig::default_for_threads(8)
            .with_p_steal(Probability::new(2))
            .with_seed(22),
    );
    run_unique_id_stress(&smq, 8);
}

#[test]
fn distributed_termination_loses_nothing_under_always_steal() {
    // p_steal = 1 with a tiny steal batch maximizes cross-thread counter
    // traffic: every pop tries to move work between workers, so published
    // and completed counts land on different counters as often as possible.
    let smq: HeapSmq<Task> = HeapSmq::new(
        SmqConfig::default_for_threads(4)
            .with_p_steal(Probability::ALWAYS)
            .with_steal_size(1)
            .with_seed(23),
    );
    run_unique_id_stress(&smq, 4);
}

#[test]
fn epoch_gated_scan_cuts_scan_traffic_on_idle_heavy_runs() {
    // A single deep chain on 8 workers: seven threads idle-spin for the
    // whole run, the worst case for scan traffic.  Pre-gate, every empty
    // pop ran one O(threads) scan (scans == empty_pops); the gate must cut
    // that by at least the gate factor.
    let threads = 8;
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(threads).with_seed(41));
    let config = ExecutorConfig::new(threads);
    let metrics = run(
        &smq,
        &config,
        vec![Task::new(0, 0)],
        |task, sink, _scratch| {
            if task.key < 20_000 {
                sink.push(Task::new(task.key + 1, task.value));
            }
        },
    );
    assert_eq!(metrics.tasks_executed, 20_001);
    let gate = u64::from(config.worker.scan_gate);
    assert!(
        metrics.quiescence_scans * gate <= metrics.total.empty_pops,
        "idle-heavy run not gated: {} scans for {} empty pops",
        metrics.quiescence_scans,
        metrics.total.empty_pops
    );
    assert!(metrics.quiescence_scans >= threads as u64);
}

/// Runs a wide fan-out workload (8 children per non-leaf task, so every
/// task-boundary sink flush carries a full batch) and returns the run's
/// total [`smq_repro::core::OpStats`].
fn run_wide_fanout<S: smq_repro::core::Scheduler<Task>>(
    scheduler: &S,
    threads: usize,
    batch: usize,
) -> smq_repro::core::OpStats {
    const SEEDS: u64 = 32;
    const MAX_DEPTH: u64 = 3;
    const FANOUT: u64 = 8;
    // 32 seeds * (1 + 8 + 64 + 512) tasks.
    let expected: u64 = SEEDS * (1 + FANOUT + FANOUT * FANOUT + FANOUT * FANOUT * FANOUT);
    let metrics = run(
        scheduler,
        &ExecutorConfig::new(threads).with_batch(batch),
        (0..SEEDS).map(|i| Task::new(0, i)).collect(),
        |task, sink, _scratch| {
            if task.key < MAX_DEPTH {
                for c in 0..FANOUT {
                    sink.push(Task::new(task.key + 1, task.value * FANOUT + c));
                }
            }
        },
    );
    assert_eq!(metrics.tasks_executed, expected);
    assert_eq!(metrics.total.pops, expected);
    metrics.total
}

/// The batch-granularity acceptance criterion: with batch >= 8, the
/// insert-path synchronization per push (lock acquisitions for the
/// Multi-Queue, stealing-buffer maintenance passes for the SMQ) must be at
/// most 1/4 of the per-task path's on the same workload.
#[test]
fn batched_inserts_amortize_push_locks_on_smq() {
    let make = || HeapSmq::<Task>::new(SmqConfig::default_for_threads(4).with_seed(51));
    let per_task = run_wide_fanout(&make(), 4, 1)
        .locks_per_push()
        .expect("SMQ counts insert-path maintenance passes");
    let batched = run_wide_fanout(&make(), 4, 8)
        .locks_per_push()
        .expect("batched SMQ still counts them");
    assert!(
        (per_task - 1.0).abs() < 1e-9,
        "per-task SMQ pays one buffer pass per push (got {per_task:.3})"
    );
    assert!(
        batched <= per_task / 4.0,
        "batch 8 must amortize SMQ insert sync to <= 1/4 of the per-task \
         path: {batched:.3} vs {per_task:.3}"
    );
}

#[test]
fn batched_inserts_amortize_push_locks_on_classic_mq() {
    let make = || MultiQueue::<Task>::new(MultiQueueConfig::classic(4).with_seed(52));
    let per_task = run_wide_fanout(&make(), 4, 1)
        .locks_per_push()
        .expect("the classic MQ locks a sub-queue per insert");
    let batched = run_wide_fanout(&make(), 4, 8)
        .locks_per_push()
        .expect("batched MQ still counts insert locks");
    assert!(
        (per_task - 1.0).abs() < 1e-9,
        "per-task MQ pays one sub-queue lock per push (got {per_task:.3})"
    );
    assert!(
        batched <= per_task / 4.0,
        "batch 8 must amortize MQ insert locks to <= 1/4 of the per-task \
         path: {batched:.3} vs {per_task:.3}"
    );
}

#[test]
fn batched_runs_report_their_amortization_factor() {
    // `tasks_per_batch` is the observable the bench tables print; a full
    // 8-fan-out batch run must average close to the configured batch.
    let smq: HeapSmq<Task> = HeapSmq::new(SmqConfig::default_for_threads(2).with_seed(53));
    let total = run_wide_fanout(&smq, 2, 8);
    let mean = total
        .tasks_per_batch()
        .expect("native batch flushes must be counted");
    assert!(
        mean >= 4.0,
        "8-child tasks at batch 8 should flush near-full batches (got {mean:.2})"
    );
    assert!(total.batch_flushes > 0);
}

#[test]
fn snapshot_delete_locks_at_most_once_per_pop_in_the_common_case() {
    // End-to-end acceptance check for the single-lock two-choice delete:
    // across a full irregular run the Multi-Queue must average at most ~1
    // delete-path lock per successful pop (the classic implementation paid
    // exactly 2).  A small margin absorbs the rare stale-snapshot fallback.
    let mq: MultiQueue<Task> = MultiQueue::new(MultiQueueConfig::classic(4).with_seed(31));
    let expected = expected_task_count(500, 12);
    let executed = AtomicU64::new(0);
    let metrics = smq_repro::runtime::run(
        &mq,
        &smq_repro::runtime::ExecutorConfig::new(4),
        (0..500).map(|i| Task::new(0, i)).collect(),
        |task, sink, _scratch| {
            executed.fetch_add(1, Ordering::Relaxed);
            let (depth, id) = (task.key, task.value);
            if depth < 12 {
                for c in 0..children_of(id, depth) {
                    sink.push(Task::new(depth + 1, id.wrapping_mul(31).wrapping_add(c)));
                }
            }
        },
    );
    assert_eq!(metrics.tasks_executed, expected);
    let locks_per_pop = metrics
        .total
        .locks_per_pop()
        .expect("lock-based scheduler must count delete-path locks");
    assert!(
        locks_per_pop <= 1.25,
        "snapshot delete averaged {locks_per_pop:.3} locks per pop (want ~1, classic was 2)"
    );
}
