//! Cross-crate integration tests: every scheduler, run through the real
//! executor on real workloads, must produce exactly the same algorithm
//! outputs as the sequential references — relaxation may change *how much*
//! work is done, never *what* is computed.

use smq_repro::algos::{astar, bfs, mst, sssp};
use smq_repro::core::{Probability, Task};
use smq_repro::graph::generators::{power_law, road_network, PowerLawParams, RoadNetworkParams};
use smq_repro::graph::CsrGraph;
use smq_repro::multiqueue::{DeletePolicy, InsertPolicy, MultiQueue, MultiQueueConfig, Reld};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::runtime::Topology;
use smq_repro::smq::{HeapSmq, SkipListSmq, SmqConfig};
use smq_repro::spraylist::{SprayList, SprayListConfig};

fn road() -> CsrGraph {
    road_network(RoadNetworkParams {
        width: 28,
        height: 28,
        removal_percent: 10,
        seed: 91,
    })
}

fn social() -> CsrGraph {
    power_law(PowerLawParams {
        nodes: 4_000,
        avg_degree: 8,
        exponent: 2.2,
        max_weight: 255,
        seed: 17,
    })
}

/// Runs SSSP + BFS on the social graph and A* + MST on the road graph with
/// the given scheduler-builder, checking everything against the sequential
/// references.
fn verify_all_workloads<S, F>(make: F, threads: usize)
where
    S: smq_repro::core::Scheduler<Task>,
    F: Fn() -> S,
{
    let social = social();
    let road = road();

    let (sssp_ref, _) = sssp::sequential(&social, 0);
    let run = sssp::parallel(&social, 0, &make(), threads);
    assert_eq!(run.distances, sssp_ref, "SSSP distances diverged");

    let (bfs_ref, _) = bfs::sequential(&social, 0);
    let run = bfs::parallel(&social, 0, &make(), threads);
    assert_eq!(run.levels, bfs_ref, "BFS levels diverged");

    let target = (road.num_nodes() - 1) as u32;
    let (astar_ref, _) = astar::sequential(&road, 0, target);
    let run = astar::parallel(&road, 0, target, &make(), threads);
    assert_eq!(run.distance, astar_ref, "A* distance diverged");

    let (kruskal, kedges) = mst::kruskal_weight(&road);
    let run = mst::parallel(&road, &make(), threads);
    assert_eq!(run.total_weight, kruskal, "MST weight diverged");
    assert_eq!(run.edges_in_forest, kedges, "MST edge count diverged");
}

#[test]
fn smq_heap_matches_references() {
    verify_all_workloads(
        || HeapSmq::<Task>::new(SmqConfig::default_for_threads(3).with_seed(1)),
        3,
    );
}

#[test]
fn smq_heap_with_aggressive_stealing_matches_references() {
    verify_all_workloads(
        || {
            HeapSmq::<Task>::new(
                SmqConfig::default_for_threads(2)
                    .with_p_steal(Probability::ALWAYS)
                    .with_steal_size(64)
                    .with_seed(2),
            )
        },
        2,
    );
}

#[test]
fn smq_skiplist_matches_references() {
    verify_all_workloads(
        || SkipListSmq::<Task>::new(SmqConfig::default_for_threads(2).with_seed(3)),
        2,
    );
}

#[test]
fn smq_numa_variant_matches_references() {
    verify_all_workloads(
        || {
            HeapSmq::<Task>::new(
                SmqConfig::default_for_threads(4)
                    .with_numa(Topology::split(4, 2), 16)
                    .with_seed(4),
            )
        },
        4,
    );
}

#[test]
fn classic_multiqueue_matches_references() {
    verify_all_workloads(
        || MultiQueue::<Task>::new(MultiQueueConfig::classic(2).with_seed(5)),
        2,
    );
}

#[test]
fn optimized_multiqueue_matches_references() {
    verify_all_workloads(
        || {
            MultiQueue::<Task>::new(
                MultiQueueConfig::classic(2)
                    .with_insert(InsertPolicy::Batching(16))
                    .with_delete(DeletePolicy::Batching(16))
                    .with_seed(6),
            )
        },
        2,
    );
}

#[test]
fn temporal_locality_multiqueue_matches_references() {
    verify_all_workloads(
        || {
            MultiQueue::<Task>::new(
                MultiQueueConfig::classic(2)
                    .with_insert(InsertPolicy::TemporalLocality(Probability::new(64)))
                    .with_delete(DeletePolicy::TemporalLocality(Probability::new(64)))
                    .with_seed(7),
            )
        },
        2,
    );
}

#[test]
fn numa_multiqueue_matches_references() {
    verify_all_workloads(
        || {
            MultiQueue::<Task>::new(
                MultiQueueConfig::classic(4)
                    .with_numa(Topology::split(4, 2), 64)
                    .with_seed(8),
            )
        },
        4,
    );
}

#[test]
fn reld_matches_references() {
    verify_all_workloads(|| Reld::<Task>::new(2, 4, 9), 2);
}

#[test]
fn obim_matches_references() {
    verify_all_workloads(|| Obim::<Task>::new(ObimConfig::obim(2, 6, 16)), 2);
}

#[test]
fn pmod_matches_references() {
    verify_all_workloads(|| Obim::<Task>::new(ObimConfig::pmod(2, 6, 16)), 2);
}

#[test]
fn spraylist_matches_references() {
    verify_all_workloads(
        || SprayList::<Task>::new(SprayListConfig::default_for_threads(2)),
        2,
    );
}
