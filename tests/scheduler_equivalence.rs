//! Cross-crate integration tests: every scheduler, run through the real
//! executor on real workloads, must produce algorithm outputs equivalent to
//! the sequential references — relaxation may change *how much* work is
//! done, never *what* is computed.
//!
//! All seven workloads go through the generic engine
//! (`smq_algos::engine::run_and_check`), which runs the parallel workload,
//! runs its sequential reference, and asserts the workload's own
//! equivalence notion (exact for SSSP/BFS/A*/MST/k-core/CC, the
//! epsilon-derived tolerance bound for PageRank-delta).

use smq_repro::algos::astar::AstarWorkload;
use smq_repro::algos::cc::CcWorkload;
use smq_repro::algos::engine;
use smq_repro::algos::kcore::KCoreWorkload;
use smq_repro::algos::mst::BoruvkaWorkload;
use smq_repro::algos::pagerank::{PagerankConfig, PagerankWorkload};
use smq_repro::algos::sssp::SsspWorkload;
use smq_repro::core::{Probability, Scheduler, Task};
use smq_repro::graph::generators::{power_law, road_network, PowerLawParams, RoadNetworkParams};
use smq_repro::graph::CsrGraph;
use smq_repro::multiqueue::{DeletePolicy, InsertPolicy, MultiQueue, MultiQueueConfig, Reld};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::runtime::Topology;
use smq_repro::smq::{HeapSmq, SkipListSmq, SmqConfig};
use smq_repro::spraylist::{SprayList, SprayListConfig};

fn road() -> CsrGraph {
    road_network(RoadNetworkParams {
        width: 28,
        height: 28,
        removal_percent: 10,
        seed: 91,
    })
}

fn social() -> CsrGraph {
    power_law(PowerLawParams {
        nodes: 4_000,
        avg_degree: 8,
        exponent: 2.2,
        max_weight: 255,
        seed: 17,
    })
}

/// A smaller power-law graph for the two task-heavy new workloads
/// (PageRank-delta, k-core): their wasted-work amplification under
/// relaxation is much higher than SSSP's, and the equivalence guarantee is
/// size-independent, so a compact graph keeps the debug-mode suite fast
/// while the tolerance bound stays meaningful.
fn small_social() -> CsrGraph {
    power_law(PowerLawParams {
        nodes: 800,
        avg_degree: 6,
        exponent: 2.2,
        max_weight: 255,
        seed: 29,
    })
}

/// Runs all seven workloads on fresh schedulers from `make`, each checked
/// against its sequential reference by the engine.
fn verify_all_workloads<S, F>(make: F, threads: usize)
where
    S: Scheduler<Task>,
    F: Fn() -> S,
{
    let social = social();
    let road = road();
    let small_social = small_social();
    let target = (road.num_nodes() - 1) as u32;

    engine::run_and_check(&SsspWorkload::new(&social, 0), &make(), threads);
    engine::run_and_check(&SsspWorkload::bfs(&social, 0), &make(), threads);
    engine::run_and_check(&AstarWorkload::new(&road, 0, target), &make(), threads);
    // MST is also cross-checked against Kruskal — an algorithmically
    // independent reference, so a bug in the shared Borůvka machinery can't
    // hide by corrupting the parallel run and its reference identically.
    let (mst_run, _) = engine::run_and_check(&BoruvkaWorkload::new(&road), &make(), threads);
    let (kruskal, kedges) = smq_repro::algos::mst::kruskal_weight(&road);
    assert_eq!(
        mst_run.output,
        (kruskal, kedges),
        "MST diverged from Kruskal"
    );
    engine::run_and_check(
        &PagerankWorkload::new(&small_social, PagerankConfig::test_scale()),
        &make(),
        threads,
    );
    engine::run_and_check(&KCoreWorkload::new(&small_social), &make(), threads);
    engine::run_and_check(&CcWorkload::new(&social), &make(), threads);
}

#[test]
fn smq_heap_matches_references() {
    verify_all_workloads(
        || HeapSmq::<Task>::new(SmqConfig::default_for_threads(3).with_seed(1)),
        3,
    );
}

#[test]
fn smq_heap_with_aggressive_stealing_matches_references() {
    verify_all_workloads(
        || {
            HeapSmq::<Task>::new(
                SmqConfig::default_for_threads(2)
                    .with_p_steal(Probability::ALWAYS)
                    .with_steal_size(64)
                    .with_seed(2),
            )
        },
        2,
    );
}

#[test]
fn smq_skiplist_matches_references() {
    verify_all_workloads(
        || SkipListSmq::<Task>::new(SmqConfig::default_for_threads(2).with_seed(3)),
        2,
    );
}

#[test]
fn smq_numa_variant_matches_references() {
    verify_all_workloads(
        || {
            HeapSmq::<Task>::new(
                SmqConfig::default_for_threads(4)
                    .with_numa(Topology::split(4, 2), 16)
                    .with_seed(4),
            )
        },
        4,
    );
}

#[test]
fn classic_multiqueue_matches_references() {
    verify_all_workloads(
        || MultiQueue::<Task>::new(MultiQueueConfig::classic(2).with_seed(5)),
        2,
    );
}

#[test]
fn optimized_multiqueue_matches_references() {
    verify_all_workloads(
        || {
            MultiQueue::<Task>::new(
                MultiQueueConfig::classic(2)
                    .with_insert(InsertPolicy::Batching(16))
                    .with_delete(DeletePolicy::Batching(16))
                    .with_seed(6),
            )
        },
        2,
    );
}

#[test]
fn temporal_locality_multiqueue_matches_references() {
    verify_all_workloads(
        || {
            MultiQueue::<Task>::new(
                MultiQueueConfig::classic(2)
                    .with_insert(InsertPolicy::TemporalLocality(Probability::new(64)))
                    .with_delete(DeletePolicy::TemporalLocality(Probability::new(64)))
                    .with_seed(7),
            )
        },
        2,
    );
}

#[test]
fn numa_multiqueue_matches_references() {
    verify_all_workloads(
        || {
            MultiQueue::<Task>::new(
                MultiQueueConfig::classic(4)
                    .with_numa(Topology::split(4, 2), 64)
                    .with_seed(8),
            )
        },
        4,
    );
}

#[test]
fn reld_matches_references() {
    verify_all_workloads(|| Reld::<Task>::new(2, 4, 9), 2);
}

#[test]
fn obim_matches_references() {
    verify_all_workloads(|| Obim::<Task>::new(ObimConfig::obim(2, 6, 16)), 2);
}

#[test]
fn pmod_matches_references() {
    verify_all_workloads(|| Obim::<Task>::new(ObimConfig::pmod(2, 6, 16)), 2);
}

#[test]
fn spraylist_matches_references() {
    verify_all_workloads(
        || SprayList::<Task>::new(SprayListConfig::default_for_threads(2)),
        2,
    );
}
