//! Cross-crate NUMA-scheduling properties and stress tests.
//!
//! Three guarantees are pinned here, at the workspace level, because they
//! span the topology layer, both schedulers, and the engine:
//!
//! * **Partition**: the node-blocked queue layout assigns every queue to
//!   exactly one node, and each node's block is the contiguous range
//!   `queues_of_node` reports — for arbitrary topology shapes.
//! * **Weighted sampling honors its contract**: the empirical in-node
//!   fraction of `WeightedQueueSampler` matches the documented
//!   `local_probability()` within tolerance, across random shapes, weights,
//!   and seeds.
//! * **`Topology::single_node` is exactly the topology-blind code path**:
//!   a single-thread replay with NUMA configured over one node produces
//!   *identical* `OpStats` (and work accounting) to a run with NUMA
//!   disabled, for both the Multi-Queue and the Stealing Multi-Queue.
//!   This is what makes NUMA awareness strictly opt-in.
//!
//! Plus the locality stress-assert: under a simulated 2-node topology with
//! a heavy local weight, the measured sample/steal locality rates must
//! meet the configured target.

use proptest::prelude::*;

use smq_repro::algos::engine;
use smq_repro::algos::sssp::SsspWorkload;
use smq_repro::core::rng::Pcg32;
use smq_repro::core::{OpStats, Probability, Scheduler, Task};
use smq_repro::graph::generators::{road_network, RoadNetworkParams};
use smq_repro::graph::CsrGraph;
use smq_repro::multiqueue::{MultiQueue, MultiQueueConfig};
use smq_repro::runtime::{Topology, WeightedQueueSampler};
use smq_repro::smq::{HeapSmq, SmqConfig};

fn road(width: u32, seed: u64) -> CsrGraph {
    road_network(RoadNetworkParams {
        width,
        height: width,
        removal_percent: 10,
        seed,
    })
}

/// Merged `OpStats` plus work accounting from one single-thread SSSP
/// replay — everything that must be bit-identical between the
/// topology-blind path and the single-node NUMA path.
fn replay<S: Scheduler<Task>>(scheduler: &S, graph: &CsrGraph) -> (OpStats, u64, u64) {
    let workload = SsspWorkload::new(graph, 0);
    let run = engine::run_parallel_batched(&workload, scheduler, 1, 1);
    (
        run.result.metrics.total.clone(),
        run.result.useful_tasks,
        run.result.wasted_tasks,
    )
}

proptest! {
    /// The node-blocked layout is a partition: every queue belongs to
    /// exactly one node, blocks are contiguous, and `node_of_queue` agrees
    /// with `queues_of_node` — for arbitrary topology shapes and
    /// queues-per-thread factors.
    #[test]
    fn node_assignment_partitions_the_queue_space(
        nodes in 1usize..6,
        threads_per_node in 1usize..5,
        qpt in 1usize..5,
    ) {
        let topo = Topology::uniform(nodes, threads_per_node);
        let num_queues = topo.num_threads() * qpt;
        let mut owners = vec![None; num_queues];
        for node in 0..nodes {
            let block = topo.queues_of_node(node, qpt);
            prop_assert_eq!(block.len(), topo.queues_per_node(qpt));
            for q in block {
                prop_assert!(q < num_queues, "queue {} out of range", q);
                prop_assert_eq!(owners[q], None, "queue {} claimed twice", q);
                owners[q] = Some(node);
                prop_assert_eq!(topo.node_of_queue(q, qpt), node);
            }
        }
        prop_assert!(owners.iter().all(Option::is_some), "some queue unassigned");
    }

    /// The weighted sampler's empirical in-node fraction matches its
    /// documented `local_probability()` within tolerance, across topology
    /// shapes, weights `K`, sampling threads, and RNG seeds.
    #[test]
    fn weighted_choice_matches_documented_probability(
        nodes in 2usize..5,
        threads_per_node in 1usize..4,
        qpt in 1usize..4,
        k in prop::sample::select(vec![1u32, 2, 4, 16, 64]),
        thread in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let topo = Topology::uniform(nodes, threads_per_node);
        let thread = thread % topo.num_threads();
        let sampler = WeightedQueueSampler::new(topo, qpt, k);
        let mut rng = Pcg32::new(seed);
        const DRAWS: usize = 8_192;
        let mut local = 0usize;
        for _ in 0..DRAWS {
            let (q, was_local) = sampler.sample(thread, &mut rng);
            prop_assert!(q < sampler.num_queues());
            local += usize::from(was_local);
        }
        let empirical = local as f64 / DRAWS as f64;
        let expected = sampler.local_probability();
        // Standard error at 8k draws is <= 0.0056; 5 sigma ~ 0.028.
        prop_assert!(
            (empirical - expected).abs() < 0.03,
            "empirical {} vs documented {} (K={}, nodes={})",
            empirical, expected, k, nodes
        );
    }

    /// A single-node NUMA configuration is bit-for-bit the topology-blind
    /// code path: single-thread replays produce identical operation
    /// statistics and work accounting for the Multi-Queue.
    #[test]
    fn single_node_multiqueue_replay_is_stats_identical(
        width in 8u32..20,
        seed in 0u64..1_000_000,
        k in prop::sample::select(vec![1u32, 16, 256]),
    ) {
        let graph = road(width, seed);
        let blind: MultiQueue<Task> =
            MultiQueue::new(MultiQueueConfig::classic(1).with_seed(seed));
        let numa: MultiQueue<Task> = MultiQueue::new(
            MultiQueueConfig::classic(1)
                .with_seed(seed)
                .with_numa(Topology::single_node(1), k),
        );
        prop_assert_eq!(replay(&blind, &graph), replay(&numa, &graph));
    }

    /// Same zero-regression guarantee for the Stealing Multi-Queue: NUMA
    /// over one node must not change a single counter relative to the
    /// topology-blind scheduler.
    #[test]
    fn single_node_smq_replay_is_stats_identical(
        width in 8u32..20,
        seed in 0u64..1_000_000,
        k in prop::sample::select(vec![1u32, 16, 256]),
    ) {
        let graph = road(width, seed);
        let blind: HeapSmq<Task> =
            HeapSmq::new(SmqConfig::default_for_threads(1).with_seed(seed));
        let numa: HeapSmq<Task> = HeapSmq::new(
            SmqConfig::default_for_threads(1)
                .with_seed(seed)
                .with_numa(Topology::single_node(1), k),
        );
        prop_assert_eq!(replay(&blind, &graph), replay(&numa, &graph));
    }
}

/// Locality stress-assert: a 4-thread run over a simulated 2-node topology
/// with a heavy local weight must keep the measured sample locality at or
/// above the configured target, and classified steals must stay
/// predominantly in-node.
#[test]
fn two_node_locality_meets_target() {
    let graph = road(40, 7);
    let topology = Topology::split(4, 2);
    let k = 64;

    // With C=4 queues per thread and 2 symmetric nodes, half the queues are
    // local: p_local = L / (L + R/K) = 0.5 / (0.5 + 0.5/64) ~ 0.9846.  The
    // target leaves headroom for the (classified-uniform) K-independent
    // accesses around it.
    let sample_target = 0.9;
    let mq: MultiQueue<Task> = MultiQueue::new(
        MultiQueueConfig::classic(4)
            .with_seed(11)
            .with_numa(topology.clone(), k),
    );
    let run = engine::run_parallel_batched(&SsspWorkload::new(&graph, 0), &mq, 4, 1);
    let stats = &run.result.metrics.total;
    let rate = stats
        .sample_locality_rate()
        .expect("NUMA-configured MultiQueue must classify samples");
    assert!(
        stats.local_samples + stats.remote_samples > 1_000,
        "stress run too small to be meaningful"
    );
    assert!(
        rate >= sample_target,
        "sample locality {rate} below target {sample_target}"
    );

    // SMQ: 1 of 3 possible victims is in-node, so uniform sampling would
    // sit at ~0.33; the weighted sampler with K=64 must push the sampled
    // *and* the successful-steal locality far above that.
    let steal_target = 0.6;
    let smq: HeapSmq<Task> = HeapSmq::new(
        SmqConfig::default_for_threads(4)
            .with_steal_size(4)
            .with_p_steal(Probability::new(2))
            .with_seed(13)
            .with_numa(topology, k),
    );
    let run = engine::run_parallel_batched(&SsspWorkload::new(&graph, 0), &smq, 4, 1);
    let stats = &run.result.metrics.total;
    let sampled = stats
        .sample_locality_rate()
        .expect("NUMA-configured SMQ must classify sampled victims");
    assert!(
        sampled >= steal_target,
        "sampled-victim locality {sampled} below target {steal_target}"
    );
    if stats.local_steals + stats.remote_steals >= 100 {
        let stolen = stats.steal_locality_rate().unwrap();
        assert!(
            stolen >= steal_target,
            "successful-steal locality {stolen} below target {steal_target}"
        );
    }
}
