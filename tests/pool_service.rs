//! Integration tests for the resident worker pool and job service.
//!
//! The central claims under test:
//!
//! * **Reuse is invisible** — N sequential jobs on one `WorkerPool` produce
//!   results identical to N fresh one-shot `run_parallel` runs, with
//!   per-job `pushes == pops` (termination generations keep job accounting
//!   from leaking across jobs);
//! * **Workers are resident** — a pool serving ≥ 1000 route queries spawns
//!   its threads exactly once (the acceptance criterion's "zero thread
//!   respawns", asserted via `PoolStats::threads_spawned`);
//! * **The service front door behaves** — FIFO admission from many client
//!   threads, correct results under concurrency, graceful drain on
//!   shutdown;
//! * **Gangs are invisible except for speed** — N jobs submitted across C
//!   client threads onto G gangs produce exactly the answers of N
//!   sequential runs, with `submitted == completed` and per-job (hence
//!   per-gang) `pushes == pops`: no task ever leaks across gangs;
//! * **Panics are contained** — a deliberately panicking job resolves its
//!   own ticket to `Err(JobLost)` and leaves other clients' jobs (and the
//!   service) intact.

use std::sync::Arc;

use proptest::prelude::*;

use smq_repro::algos::cc::CcWorkload;
use smq_repro::algos::kcore::KCoreWorkload;
use smq_repro::algos::sssp::SsspWorkload;
use smq_repro::algos::{astar, engine, RouteQueryEngine};
use smq_repro::core::Task;
use smq_repro::graph::generators::{road_network, uniform_random, RoadNetworkParams};
use smq_repro::multiqueue::{MultiQueue, MultiQueueConfig};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::pool::{
    JobError, JobLost, JobService, PoolConfig, PoolJob, RespawnPolicy, ServiceConfig, WorkerPool,
};
use smq_repro::runtime::Scratch;
use smq_repro::smq::{HeapSmq, SmqConfig};

fn smq_pool(threads: usize, seed: u64) -> WorkerPool {
    WorkerPool::new(
        HeapSmq::<Task>::new(SmqConfig::default_for_threads(threads).with_seed(seed)),
        PoolConfig::new(threads),
    )
}

fn smq_gang_pool(gangs: usize, gang_size: usize, seed: u64) -> WorkerPool {
    WorkerPool::new_partitioned(
        move |g| {
            HeapSmq::<Task>::new(
                SmqConfig::default_for_threads(gang_size).with_seed(seed + g as u64),
            )
        },
        PoolConfig::partitioned(gangs, gang_size),
    )
}

proptest! {
    /// N sequential jobs on one pool == N fresh one-shot runs, across
    /// random graphs and mixed workloads, with conserved per-job tasks.
    #[test]
    fn pool_reuse_matches_fresh_runs(
        nodes in 16u32..80,
        edge_factor in 2u64..5,
        threads in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let graph = uniform_random(nodes, u64::from(nodes) * edge_factor, 200, seed);
        let pool = smq_pool(threads, seed);

        // Alternate workload types across the job stream so consecutive
        // jobs differ — the harder case for generation isolation.
        for job in 0..6 {
            let (pooled, fresh) = match job % 3 {
                0 => {
                    let workload = SsspWorkload::new(&graph, 0);
                    let pooled = engine::run_on_pool(&workload, &pool);
                    let fresh_workload = SsspWorkload::new(&graph, 0);
                    let scheduler =
                        HeapSmq::<Task>::new(SmqConfig::default_for_threads(threads).with_seed(seed));
                    let fresh = engine::run_parallel(&fresh_workload, &scheduler, threads);
                    prop_assert_eq!(&pooled.output, &fresh.output, "SSSP diverged on job {}", job);
                    (pooled.result, fresh.result)
                }
                1 => {
                    let workload = CcWorkload::new(&graph);
                    let pooled = engine::run_on_pool(&workload, &pool);
                    let fresh_workload = CcWorkload::new(&graph);
                    let scheduler =
                        HeapSmq::<Task>::new(SmqConfig::default_for_threads(threads).with_seed(seed));
                    let fresh = engine::run_parallel(&fresh_workload, &scheduler, threads);
                    prop_assert_eq!(&pooled.output, &fresh.output, "CC diverged on job {}", job);
                    (pooled.result, fresh.result)
                }
                _ => {
                    let workload = KCoreWorkload::new(&graph);
                    let pooled = engine::run_on_pool(&workload, &pool);
                    let fresh_workload = KCoreWorkload::new(&graph);
                    let scheduler =
                        HeapSmq::<Task>::new(SmqConfig::default_for_threads(threads).with_seed(seed));
                    let fresh = engine::run_parallel(&fresh_workload, &scheduler, threads);
                    prop_assert_eq!(&pooled.output, &fresh.output, "k-core diverged on job {}", job);
                    (pooled.result, fresh.result)
                }
            };
            // Per-job conservation: everything pushed in THIS job was popped
            // in THIS job — no cross-job task leakage through the resident
            // scheduler or the reused termination detector.
            prop_assert_eq!(
                pooled.metrics.total.pushes,
                pooled.metrics.total.pops,
                "job {} leaked tasks across the job boundary",
                job
            );
            prop_assert_eq!(
                pooled.metrics.total.pops,
                pooled.metrics.tasks_executed,
                "job {} pop/execution mismatch",
                job
            );
            prop_assert_eq!(
                pooled.useful_tasks + pooled.wasted_tasks,
                pooled.metrics.tasks_executed
            );
            // The pooled job settles the same useful work as the fresh run
            // (useful counts are deterministic for these exact workloads'
            // final states only; totals may differ by relaxation — compare
            // only what is schedule-independent).
            prop_assert!(pooled.useful_tasks > 0 || fresh.useful_tasks == pooled.useful_tasks);
        }

        let stats = pool.stats();
        prop_assert_eq!(stats.jobs_completed, 6);
        prop_assert_eq!(stats.threads_spawned, threads as u64, "workers respawned");
    }
}

/// The acceptance criterion: one `WorkerPool` serves ≥ 1000 consecutive
/// point-to-point A* query jobs, every answer matching a one-shot run,
/// with zero thread respawns.
#[test]
fn one_pool_serves_a_thousand_route_queries() {
    let graph = Arc::new(road_network(RoadNetworkParams {
        width: 16,
        height: 16,
        removal_percent: 12,
        seed: 77,
    }));
    let n = graph.num_nodes() as u32;
    let engine = RouteQueryEngine::new(Arc::clone(&graph));
    let pool = smq_pool(2, 5);

    for i in 0..1_000u64 {
        let source = ((i * 37) % u64::from(n)) as u32;
        let target = ((i * 101 + 13) % u64::from(n)) as u32;
        let answer = engine.query(source, target, &pool);
        // One-shot reference: the workload the engine replaces.
        let (expected, _) = astar::sequential(&graph, source, target);
        assert_eq!(
            answer.distance, expected,
            "query {i} ({source}->{target}) diverged from the one-shot run"
        );
        // Per-query conservation through the resident scheduler.
        assert_eq!(
            answer.result.metrics.total.pushes, answer.result.metrics.total.pops,
            "query {i} leaked tasks"
        );
    }

    let stats = pool.stats();
    assert_eq!(stats.jobs_completed, 1_000);
    assert_eq!(
        stats.threads_spawned, 2,
        "the pool must never respawn threads across 1000 jobs"
    );
    assert_eq!(
        stats.handles_created, 2,
        "a worker creates its scheduler handle once at warm-up; 1000 jobs \
         must perform zero handle allocations after that"
    );
    assert_eq!(engine.queries_served(), 1_000);
}

/// The 1000-query acceptance run again, at batch granularity 8: identical
/// answers, identical residency guarantees, and the native batch paths
/// demonstrably in use.
#[test]
fn batched_pool_serves_route_queries_exactly() {
    let graph = Arc::new(road_network(RoadNetworkParams {
        width: 14,
        height: 14,
        removal_percent: 12,
        seed: 78,
    }));
    let n = graph.num_nodes() as u32;
    let engine = RouteQueryEngine::new(Arc::clone(&graph));
    let pool = WorkerPool::new(
        HeapSmq::<Task>::new(SmqConfig::default_for_threads(2).with_seed(6)),
        PoolConfig::new(2).with_batch(8),
    );

    let mut batched_flushes = 0u64;
    for i in 0..300u64 {
        let source = ((i * 41) % u64::from(n)) as u32;
        let target = ((i * 89 + 7) % u64::from(n)) as u32;
        let answer = engine.query(source, target, &pool);
        let (expected, _) = astar::sequential(&graph, source, target);
        assert_eq!(answer.distance, expected, "batched query {i} diverged");
        assert_eq!(
            answer.result.metrics.total.pushes, answer.result.metrics.total.pops,
            "batched query {i} leaked tasks"
        );
        batched_flushes += answer.result.metrics.total.batch_flushes;
    }
    assert!(
        batched_flushes > 0,
        "batch 8 queries must exercise the native push_batch path"
    );
    let stats = pool.stats();
    assert_eq!(stats.threads_spawned, 2);
    assert_eq!(stats.handles_created, 2);
}

/// A sample of queries cross-checked against the one-shot *parallel* A*
/// workload as well (not just sequential), on a different scheduler family.
#[test]
fn pooled_queries_match_one_shot_parallel_astar() {
    let graph = Arc::new(road_network(RoadNetworkParams {
        width: 14,
        height: 14,
        removal_percent: 10,
        seed: 3,
    }));
    let n = graph.num_nodes() as u32;
    let engine = RouteQueryEngine::new(Arc::clone(&graph));
    let pool = WorkerPool::new(
        Obim::<Task>::new(ObimConfig::obim(2, 8, 16)),
        PoolConfig::new(2),
    );
    for i in 0..25u32 {
        let source = (i * 19) % n;
        let target = (i * 53 + 5) % n;
        let pooled = engine.query(source, target, &pool);
        let mq: MultiQueue<Task> = MultiQueue::new(MultiQueueConfig::classic(2).with_seed(9));
        let one_shot = astar::parallel(&graph, source, target, &mq, 2);
        assert_eq!(pooled.distance, one_shot.distance);
    }
}

/// Service-level FIFO + concurrency: many clients, every job completes
/// with a correct result, stats reconcile, graceful shutdown drains.
#[test]
fn job_service_serves_concurrent_clients_correctly() {
    let graph = Arc::new(road_network(RoadNetworkParams {
        width: 12,
        height: 12,
        removal_percent: 10,
        seed: 21,
    }));
    let n = graph.num_nodes() as u32;
    let engine = Arc::new(RouteQueryEngine::new(Arc::clone(&graph)));
    let service = Arc::new(JobService::new(
        WorkerPool::new(
            MultiQueue::<Task>::new(MultiQueueConfig::classic(2).with_seed(8)),
            PoolConfig::new(2),
        ),
        ServiceConfig {
            queue_capacity: 8,
            dispatchers: 0,
        },
    ));

    std::thread::scope(|scope| {
        for client in 0..3u32 {
            let service = Arc::clone(&service);
            let engine = Arc::clone(&engine);
            let graph = Arc::clone(&graph);
            scope.spawn(move || {
                for i in 0..40u32 {
                    let source = (client * 47 + i * 7) % n;
                    let target = (client * 31 + i * 11 + 1) % n;
                    let engine = Arc::clone(&engine);
                    let ticket = service
                        .submit(move |pool| engine.query(source, target, pool))
                        .expect("open service accepts jobs");
                    let done = ticket.wait().expect("query job completed");
                    let (expected, _) = astar::sequential(&graph, source, target);
                    assert_eq!(done.output.distance, expected);
                }
            });
        }
    });

    let service = Arc::into_inner(service).expect("clients joined");
    let pool_stats = service.pool_stats();
    let stats = service.shutdown();
    assert_eq!(stats.submitted, 120);
    assert_eq!(stats.completed, 120);
    assert_eq!(pool_stats.jobs_completed, 120);
    assert_eq!(pool_stats.threads_spawned, 2);
}

proptest! {
    /// The concurrent-gang property: N route queries submitted across C
    /// client threads onto a G-gang pool produce exactly the answers N
    /// sequential runs would, with `submitted == completed` and per-job
    /// `pushes == pops` — since each job's metrics slice covers exactly the
    /// gang it ran on, the balance also proves no task leaked across gangs.
    #[test]
    fn concurrent_gang_jobs_match_sequential_runs(
        width in 6u32..12,
        gangs in 1usize..4,
        gang_size in 1usize..3,
        clients in 1usize..4,
        seed in 0u64..1_000_000,
    ) {
        let graph = Arc::new(road_network(RoadNetworkParams {
            width,
            height: width,
            removal_percent: 10,
            seed,
        }));
        let n = graph.num_nodes() as u32;
        let engine = Arc::new(RouteQueryEngine::with_lanes(Arc::clone(&graph), gangs));
        let service = Arc::new(JobService::new(
            smq_gang_pool(gangs, gang_size, seed),
            ServiceConfig {
                queue_capacity: 8,
                dispatchers: 0, // one per gang: up to G jobs in flight
            },
        ));

        let per_client = 8u32;
        std::thread::scope(|scope| {
            for client in 0..clients as u32 {
                let service = Arc::clone(&service);
                let engine = Arc::clone(&engine);
                let graph = Arc::clone(&graph);
                scope.spawn(move || {
                    for i in 0..per_client {
                        let source = (client * 131 + i * 17 + (seed as u32 % 7)) % n;
                        let target = (client * 37 + i * 43 + 1) % n;
                        let engine = Arc::clone(&engine);
                        let ticket = service
                            .submit(move |pool| engine.query(source, target, pool))
                            .expect("open service accepts jobs");
                        let done = ticket.wait().expect("no job may be lost");
                        // Same output as a sequential run of the same query.
                        let (expected, _) = astar::sequential(&graph, source, target);
                        assert_eq!(
                            done.output.distance, expected,
                            "query {source}->{target} diverged under {gangs} gangs"
                        );
                        // Per-gang task conservation: everything this job
                        // pushed into its gang's scheduler was popped by it.
                        assert_eq!(
                            done.output.result.metrics.total.pushes,
                            done.output.result.metrics.total.pops,
                            "job leaked tasks across gangs"
                        );
                        assert_eq!(
                            done.output.result.metrics.threads,
                            gang_size,
                            "a query job must occupy exactly one gang"
                        );
                    }
                });
            }
        });

        let service = Arc::into_inner(service).expect("clients joined");
        let pool_stats = service.pool_stats();
        let stats = service.shutdown();
        let total = (clients as u32 * per_client) as u64;
        prop_assert_eq!(stats.submitted, total);
        prop_assert_eq!(stats.completed, total, "submitted == completed");
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(pool_stats.jobs_completed, total);
        prop_assert_eq!(pool_stats.threads_spawned, (gangs * gang_size) as u64);
        prop_assert_eq!(pool_stats.gangs_poisoned, 0);
    }
}

/// A job whose `process` panics on its only task.
struct PanickingJob;

impl PoolJob for PanickingJob {
    fn seed_tasks(&self) -> Vec<Task> {
        vec![Task::new(0, 0)]
    }

    fn process(&self, _t: Task, _push: &mut dyn FnMut(Task), _s: &mut Scratch) -> bool {
        panic!("intentional integration-test job panic");
    }
}

/// The `JobTicket::wait` regression: a deliberately panicking job must
/// resolve to `Err(JobLost)` for its own client — and a second client of
/// the long-lived service must also get a `Result` (never a panic), `Ok`
/// while live gangs remain, `Err` once the pool has none left.
#[test]
fn panicking_job_resolves_tickets_instead_of_panicking_clients() {
    // Two gangs: the panic burns one (the factory-built pool lazily
    // respawns it), the second client's job still runs.
    let graph = Arc::new(road_network(RoadNetworkParams {
        width: 8,
        height: 8,
        removal_percent: 10,
        seed: 11,
    }));
    let n = graph.num_nodes() as u32;
    let engine = Arc::new(RouteQueryEngine::with_lanes(Arc::clone(&graph), 2));
    let service = JobService::new(
        smq_gang_pool(2, 1, 41),
        ServiceConfig {
            queue_capacity: 4,
            dispatchers: 0,
        },
    );

    let bad = service
        .submit(|pool| {
            pool.run_job_on(&PanickingJob, 1)
                .expect("fails by panicking");
        })
        .expect("submit panicking job");
    assert!(
        bad.wait().is_err(),
        "the panicking job's own ticket must be Err(JobLost), not a client panic"
    );

    // Second client on the surviving gang: plain Ok.
    let second_engine = Arc::clone(&engine);
    let good = service
        .submit(move |pool| second_engine.query(0, n - 1, pool))
        .expect("service still accepts jobs");
    let done = good
        .wait()
        .expect("surviving gang serves the second client");
    let (expected, _) = astar::sequential(&graph, 0, n - 1);
    assert_eq!(done.output.distance, expected);

    let pool_stats = service.pool_stats();
    let stats = service.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed + stats.failed, stats.submitted);
    assert_eq!(pool_stats.gangs_poisoned, 1);
    assert_eq!(
        pool_stats.gangs_respawned, 1,
        "the factory-built pool must lazily rebuild the poisoned gang"
    );
}

/// Same regression on a single-gang pool **without** a respawn factory:
/// with no live gang left, later clients get the typed
/// `Err(JobError::NoCapacity)` — still never a panic out of `wait`.
#[test]
fn fully_poisoned_service_fails_jobs_gracefully() {
    let service = JobService::new(
        smq_pool(1, 13),
        ServiceConfig {
            queue_capacity: 4,
            dispatchers: 0,
        },
    );
    let bad = service
        .submit(|pool| {
            pool.run_job(&PanickingJob).expect("fails by panicking");
        })
        .expect("submit panicking job");
    assert_eq!(bad.wait().map(|c| c.output), Err(JobLost));

    // The only gang is gone: the second client's job cannot run, but its
    // ticket still resolves to Err instead of panicking the client thread.
    let second = service
        .submit(|pool| {
            pool.run_job(&PanickingJob).expect("no capacity to run it");
        })
        .expect("admission is still open");
    assert_eq!(
        second.wait().map(|c| c.output),
        Err(JobError::NoCapacity),
        "second client must see the typed NoCapacity error, not a panic"
    );

    let stats = service.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.no_capacity, 1);
    assert_eq!(stats.completed, 0);
}

/// The FIFO-allocator poisoned-gang edge (regression): a claim enqueued
/// while every gang is unavailable — one busy, one freshly poisoned with
/// no respawn — must re-route to the surviving gang when it frees, not
/// starve behind the dead one.
#[test]
fn waiting_claim_reroutes_around_a_poisoned_gang() {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Holds its gang until `gate` opens; flags `started` so the test
    /// knows the gang is claimed.
    struct GateJob {
        started: Arc<AtomicBool>,
        gate: Arc<AtomicBool>,
    }
    impl PoolJob for GateJob {
        fn seed_tasks(&self) -> Vec<Task> {
            vec![Task::new(0, 0)]
        }
        fn process(&self, _t: Task, _p: &mut dyn FnMut(Task), _s: &mut Scratch) -> bool {
            self.started.store(true, Ordering::Release);
            while !self.gate.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            true
        }
    }

    let pool = Arc::new(WorkerPool::new_partitioned(
        |g| HeapSmq::<Task>::new(SmqConfig::default_for_threads(1).with_seed(61 + g as u64)),
        PoolConfig::partitioned(2, 1).with_respawn(RespawnPolicy::Never),
    ));
    let started = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Job 1 occupies one gang until the gate opens.
        let holder = {
            let pool = Arc::clone(&pool);
            let (started, gate) = (Arc::clone(&started), Arc::clone(&gate));
            scope.spawn(move || pool.run_job_on(&GateJob { started, gate }, 1))
        };
        while !started.load(Ordering::Acquire) {
            std::thread::yield_now();
        }

        // Job 2 takes the only free gang and poisons it.
        assert!(pool.run_job_on(&PanickingJob, 1).is_err());
        assert_eq!(pool.live_gangs(), 1, "no respawn: the gang stays dead");

        // Job 3 arrives while one gang is busy and the other is dead: it
        // must wait for the busy gang, then run there — not starve.
        struct OneTask;
        impl PoolJob for OneTask {
            fn seed_tasks(&self) -> Vec<Task> {
                vec![Task::new(0, 0)]
            }
            fn process(&self, _t: Task, _p: &mut dyn FnMut(Task), _s: &mut Scratch) -> bool {
                true
            }
        }
        let third = {
            let pool = Arc::clone(&pool);
            scope.spawn(move || pool.run_job_on(&OneTask, 1))
        };

        // Give job 3 a moment to reach the claim queue, then free the gang.
        std::thread::sleep(std::time::Duration::from_millis(10));
        gate.store(true, Ordering::Release);

        holder.join().expect("holder thread").expect("gate job");
        let out = third.join().expect("third-job thread");
        assert!(
            out.is_ok(),
            "the waiting claim must re-route to the surviving gang"
        );
    });
}
