//! Engine-level property tests: for randomly generated graphs, thread
//! counts, and scheduler families, every workload driven by the generic
//! engine must satisfy the accounting invariants
//!
//! * `useful_tasks + wasted_tasks == tasks_executed` (every processed task
//!   is classified exactly once),
//! * `pushes == pops` across all handles (no task is lost or
//!   double-delivered: everything pushed — seeds included — is popped
//!   exactly once before termination),
//!
//! and its output must be equivalent to the workload's own sequential
//! reference.
//!
//! The sweep covers hot-path batch sizes {1, 2, 8, 32} across every
//! scheduler family: batch granularity amortizes synchronization but must
//! never change what is computed or break the accounting.  Batch 1 is
//! additionally pinned to the per-task path (no native batch operations,
//! deterministic single-thread replays) so the default configuration
//! carries zero regression risk.

use proptest::prelude::*;

use smq_repro::algos::astar::AstarWorkload;
use smq_repro::algos::cc::CcWorkload;
use smq_repro::algos::engine::{self, DecreaseKeyWorkload, EngineRun};
use smq_repro::algos::incremental::IncrementalSsspWorkload;
use smq_repro::algos::kcore::KCoreWorkload;
use smq_repro::algos::mst::BoruvkaWorkload;
use smq_repro::algos::pagerank::{PagerankConfig, PagerankWorkload};
use smq_repro::algos::sssp::SsspWorkload;
use smq_repro::core::{Probability, Scheduler, Task};
use smq_repro::graph::generators::uniform_random;
use smq_repro::graph::{CsrGraph, GraphUpdate, LiveGraph};
use smq_repro::multiqueue::{DeletePolicy, InsertPolicy, MultiQueue, MultiQueueConfig, Reld};
use smq_repro::obim::{Obim, ObimConfig};
use smq_repro::smq::{HeapSmq, SkipListSmq, SmqConfig};
use smq_repro::spraylist::{SprayList, SprayListConfig};
use std::sync::Arc;

/// Asserts the engine invariants on a finished run.
fn assert_invariants<O>(run: &EngineRun<O>, label: &str) {
    assert_eq!(
        run.result.useful_tasks + run.result.wasted_tasks,
        run.result.metrics.tasks_executed,
        "{label}: every executed task must be exactly one of useful/wasted"
    );
    assert_eq!(
        run.result.metrics.total.pushes, run.result.metrics.total.pops,
        "{label}: tasks were lost or double-delivered"
    );
    assert_eq!(
        run.result.metrics.total.pops, run.result.metrics.tasks_executed,
        "{label}: every pop must correspond to one processed task"
    );
}

/// Runs one workload on one scheduler at the given hot-path batch size and
/// checks both the accounting invariants and equivalence with the
/// sequential reference.
fn check<W, S>(workload: &W, scheduler: &S, threads: usize, batch: usize)
where
    W: DecreaseKeyWorkload,
    S: Scheduler<Task>,
{
    let run = engine::run_parallel_batched(workload, scheduler, threads, batch);
    let reference = workload.sequential_reference();
    assert!(
        workload.outputs_equivalent(&run.output, &reference.output),
        "{} diverged from its sequential reference at batch {batch}",
        workload.name()
    );
    assert_invariants(&run, workload.name());
}

/// Undirected view of a directed graph — Borůvka's cut-property argument
/// needs symmetric adjacency.
fn symmetrized(directed: &CsrGraph) -> CsrGraph {
    use smq_repro::graph::GraphBuilder;
    let mut b = GraphBuilder::new(directed.num_nodes() as u32);
    for e in directed.edges() {
        b.add_undirected_edge(e.from, e.to, e.weight);
    }
    b.build()
}

/// Runs all eight workloads over the graph on fresh schedulers from `make`
/// (`seed` derives the incremental workload's update batch).
fn check_all_workloads<S, F>(graph: &CsrGraph, make: F, threads: usize, batch: usize, seed: u64)
where
    S: Scheduler<Task>,
    F: Fn() -> S,
{
    let target = (graph.num_nodes() - 1) as u32;
    check(&SsspWorkload::new(graph, 0), &make(), threads, batch);
    check(&SsspWorkload::bfs(graph, 0), &make(), threads, batch);
    check(
        &AstarWorkload::new(graph, 0, target),
        &make(),
        threads,
        batch,
    );
    check(
        &BoruvkaWorkload::new(&symmetrized(graph)),
        &make(),
        threads,
        batch,
    );
    let pr_config = PagerankConfig {
        damping: 0.85,
        epsilon: 1e-5,
    };
    check(
        &PagerankWorkload::new(graph, pr_config),
        &make(),
        threads,
        batch,
    );
    check(&KCoreWorkload::new(graph), &make(), threads, batch);
    check(&CcWorkload::new(graph), &make(), threads, batch);
    // Incremental SSSP over a live-graph snapshot: publish a decrease
    // batch onto a live copy and repair the pre-update distances.
    let updates = GraphUpdate::random_decreases(graph, graph.num_edges() / 4 + 1, seed);
    let live = LiveGraph::new(Arc::new(graph.clone()));
    live.publish(&updates);
    let snapshot = live.pin();
    check(
        &IncrementalSsspWorkload::after_updates(graph, &snapshot, 0, &updates),
        &make(),
        threads,
        batch,
    );
}

/// The hot-path batch sizes the properties sweep.
const BATCHES: [usize; 4] = [1, 2, 8, 32];

/// Dispatches over every scheduler family by index.
fn check_with_scheduler_family(
    graph: &CsrGraph,
    family: usize,
    threads: usize,
    seed: u64,
    batch: usize,
) {
    match family % 8 {
        0 => check_all_workloads(
            graph,
            || HeapSmq::<Task>::new(SmqConfig::default_for_threads(threads).with_seed(seed)),
            threads,
            batch,
            seed,
        ),
        1 => check_all_workloads(
            graph,
            || SkipListSmq::<Task>::new(SmqConfig::default_for_threads(threads).with_seed(seed)),
            threads,
            batch,
            seed,
        ),
        2 => check_all_workloads(
            graph,
            || MultiQueue::<Task>::new(MultiQueueConfig::classic(threads).with_seed(seed)),
            threads,
            batch,
            seed,
        ),
        3 => check_all_workloads(
            graph,
            || {
                MultiQueue::<Task>::new(
                    MultiQueueConfig::classic(threads)
                        .with_insert(InsertPolicy::Batching(8))
                        .with_delete(DeletePolicy::Batching(8))
                        .with_seed(seed),
                )
            },
            threads,
            batch,
            seed,
        ),
        4 => check_all_workloads(
            graph,
            || {
                MultiQueue::<Task>::new(
                    MultiQueueConfig::classic(threads)
                        .with_insert(InsertPolicy::TemporalLocality(Probability::new(16)))
                        .with_delete(DeletePolicy::TemporalLocality(Probability::new(16)))
                        .with_seed(seed),
                )
            },
            threads,
            batch,
            seed,
        ),
        5 => check_all_workloads(
            graph,
            || Obim::<Task>::new(ObimConfig::obim(threads, 4, 8)),
            threads,
            batch,
            seed,
        ),
        6 => check_all_workloads(
            graph,
            || Obim::<Task>::new(ObimConfig::pmod(threads, 4, 8)),
            threads,
            batch,
            seed,
        ),
        _ => check_all_workloads(
            graph,
            || Reld::<Task>::new(threads, 2, seed),
            threads,
            batch,
            seed,
        ),
    }
}

proptest! {
    #[test]
    fn every_workload_conserves_tasks_on_every_scheduler(
        nodes in 16u32..96,
        edge_factor in 2u64..5,
        family in 0usize..8,
        threads in 1usize..4,
        batch_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let graph = uniform_random(nodes, u64::from(nodes) * edge_factor, 200, seed);
        check_with_scheduler_family(&graph, family, threads, seed, BATCHES[batch_idx]);
    }

    #[test]
    fn spraylist_conserves_tasks(
        nodes in 16u32..64,
        batch_idx in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        // SprayList is slower per op; give it its own smaller sweep so the
        // combined property run stays fast.
        let graph = uniform_random(nodes, u64::from(nodes) * 3, 200, seed);
        check_all_workloads(
            &graph,
            || SprayList::<Task>::new(SprayListConfig {
                seed,
                ..SprayListConfig::default_for_threads(2)
            }),
            2,
            BATCHES[batch_idx],
            seed,
        );
    }
}

proptest! {
    /// The GraphView abstraction's zero-regression pin: the same workload
    /// on the same deterministically seeded scheduler, run once over the
    /// plain `&CsrGraph` and once over a zero-delta `LiveGraph` snapshot
    /// of the same graph, must replay **bit-identically** — same outputs,
    /// same task classification, same scheduler `OpStats`.  Single thread
    /// at batch 1 makes the replay deterministic, so any divergence the
    /// trait dispatch or the snapshot read path introduced would show as
    /// an exact-equality failure here.
    #[test]
    fn static_path_replays_identically_through_a_zero_delta_snapshot(
        nodes in 16u32..96,
        edge_factor in 2u64..5,
        seed in 0u64..1_000_000,
    ) {
        let graph = uniform_random(nodes, u64::from(nodes) * edge_factor, 200, seed);
        let live = LiveGraph::new(Arc::new(graph.clone()));
        let snapshot = live.pin();
        let make = || HeapSmq::<Task>::new(SmqConfig::default_for_threads(1).with_seed(seed ^ 5));

        let direct = engine::run_parallel_batched(&SsspWorkload::new(&graph, 0), &make(), 1, 1);
        let via = engine::run_parallel_batched(&SsspWorkload::new(&snapshot, 0), &make(), 1, 1);
        prop_assert_eq!(&direct.output, &via.output);
        prop_assert_eq!(direct.result.useful_tasks, via.result.useful_tasks);
        prop_assert_eq!(direct.result.wasted_tasks, via.result.wasted_tasks);
        prop_assert_eq!(direct.result.metrics.total, via.result.metrics.total);

        let target = (graph.num_nodes() - 1) as u32;
        let direct = engine::run_parallel_batched(&AstarWorkload::new(&graph, 0, target), &make(), 1, 1);
        let via = engine::run_parallel_batched(&AstarWorkload::new(&snapshot, 0, target), &make(), 1, 1);
        prop_assert_eq!(&direct.output, &via.output);
        prop_assert_eq!(direct.result.useful_tasks, via.result.useful_tasks);
        prop_assert_eq!(direct.result.wasted_tasks, via.result.wasted_tasks);
        prop_assert_eq!(direct.result.metrics.total, via.result.metrics.total);
    }
}

/// Runs SSSP and k-core single-threaded at batch 1 on an identically
/// seeded scheduler from `make`, returning the run's total `OpStats`.
fn batch_one_stats<S, F>(graph: &CsrGraph, make: F) -> Vec<smq_repro::core::OpStats>
where
    S: Scheduler<Task>,
    F: Fn() -> S,
{
    let sssp = SsspWorkload::new(graph, 0);
    let kcore = KCoreWorkload::new(graph);
    vec![
        engine::run_parallel_batched(&sssp, &make(), 1, 1)
            .result
            .metrics
            .total,
        engine::run_parallel_batched(&kcore, &make(), 1, 1)
            .result
            .metrics
            .total,
    ]
}

/// Batch 1 is the per-task path: single-thread replays on identically
/// seeded schedulers are **bit-identical in stats** (the executor makes no
/// batch-dependent decisions), and schedulers without policy-level insert
/// buffering record zero native batch operations — the evidence that the
/// default configuration still takes exactly the historical hot path.
#[test]
fn batch_one_is_the_per_task_path() {
    let graph = uniform_random(64, 192, 200, 77);
    // Families without policy-level insert batching: every native batch
    // counter must stay zero at batch 1.
    let a = batch_one_stats(&graph, || {
        HeapSmq::<Task>::new(SmqConfig::default_for_threads(1).with_seed(9))
    });
    let b = batch_one_stats(&graph, || {
        HeapSmq::<Task>::new(SmqConfig::default_for_threads(1).with_seed(9))
    });
    assert_eq!(a, b, "single-thread batch-1 SMQ replays must be identical");
    for stats in &a {
        assert_eq!(stats.batch_flushes, 0, "batch 1 must never batch");
        assert_eq!(stats.tasks_batched, 0);
    }
    let a = batch_one_stats(&graph, || {
        MultiQueue::<Task>::new(MultiQueueConfig::classic(1).with_seed(13))
    });
    let b = batch_one_stats(&graph, || {
        MultiQueue::<Task>::new(MultiQueueConfig::classic(1).with_seed(13))
    });
    assert_eq!(a, b, "single-thread batch-1 MQ replays must be identical");
    for stats in &a {
        assert_eq!(stats.batch_flushes, 0, "batch 1 must never batch");
        assert_eq!(
            stats.push_locks_acquired, stats.pushes,
            "per-task MQ inserts lock once per push"
        );
    }
    let a = batch_one_stats(&graph, || Obim::<Task>::new(ObimConfig::obim(1, 4, 8)));
    let b = batch_one_stats(&graph, || Obim::<Task>::new(ObimConfig::obim(1, 4, 8)));
    assert_eq!(a, b, "single-thread batch-1 OBIM replays must be identical");
    for stats in &a {
        assert_eq!(stats.batch_flushes, 0, "batch 1 must never batch");
    }
}
