//! Chaos suite: the fault-tolerance contract of the job service under
//! randomized, seeded fault storms (requires `--features fault-inject`).
//!
//! Properties, over random fault plans × gang counts × client counts:
//!
//! * **No hangs** — every submitted ticket resolves: either `Ok` with an
//!   exact answer or a typed [`JobError`], never a blocked client;
//! * **Non-faulted work is exact** — every answer that survives the storm
//!   (including via retry) still equals sequential A*;
//! * **Capacity recovers** — after the storm, the pool is back at its
//!   full gang count, and with gangs of one worker the respawn counter
//!   equals *exactly* the number of injected panics (each panic kills one
//!   worker, which is one whole gang);
//! * **Outcome accounting is total** — `completed + failed + cancelled +
//!   no_capacity == submitted`, and nothing is `failed` unless a panic
//!   was actually injected (stalls only delay, never lose work);
//! * **Deadlines are cooperative, not destructive** — under stall storms
//!   with tight per-job deadlines, tickets resolve `Ok` or
//!   `Err(DeadlineExceeded)`, the gang is never poisoned, and the pool
//!   serves a plain job immediately afterwards.

#![cfg(feature = "fault-inject")]

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use smq_repro::algos::{astar, RouteQueryEngine};
use smq_repro::core::Task;
use smq_repro::graph::generators::{road_network, RoadNetworkParams};
use smq_repro::graph::CsrGraph;
use smq_repro::pool::{
    FaultPlan, JobError, JobPolicy, JobService, PoolConfig, ServiceConfig, WorkerPool,
};
use smq_repro::smq::{HeapSmq, SmqConfig};

/// A small road graph plus deterministic query pairs and their sequential
/// ground truth.
fn fixture(seed: u64, query_count: usize) -> (Arc<CsrGraph>, Vec<(u32, u32, u64)>) {
    let graph = Arc::new(road_network(RoadNetworkParams {
        width: 8,
        height: 8,
        removal_percent: 10,
        seed: 77,
    }));
    let nodes = graph.num_nodes() as u32;
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let queries = (0..query_count)
        .map(|_| {
            let source = next() % nodes;
            let mut target = next() % nodes;
            if target == source {
                target = (target + 1) % nodes;
            }
            let expected = astar::sequential(&*graph, source, target).0;
            (source, target, expected)
        })
        .collect();
    (graph, queries)
}

/// A gang-partitioned service with **one worker per gang** (so one panic
/// kills exactly one gang) wired with the given fault plan.
fn chaos_service(gangs: usize, seed: u64, plan: FaultPlan) -> JobService {
    let pool = WorkerPool::new_partitioned(
        move |g| HeapSmq::<Task>::new(SmqConfig::default_for_threads(1).with_seed(seed + g as u64)),
        PoolConfig::partitioned(gangs, 1).with_faults(plan),
    );
    JobService::new(
        pool,
        ServiceConfig {
            queue_capacity: 8,
            dispatchers: 0, // one dispatcher per gang
        },
    )
}

proptest! {
    /// Random panic/stall storms: every ticket resolves, survivors are
    /// exact, capacity recovers to the full gang count, and the respawn
    /// counter matches the injected panics one-for-one.
    #[test]
    fn random_fault_storms_never_hang_and_capacity_recovers(
        gangs in 1usize..4,
        clients in 1usize..4,
        panic_budget in 0u64..4,
        push_panic_budget in 0u64..3,
        stall_budget in 0u64..5,
        seed in 0u64..1_000_000,
    ) {
        let (_graph, queries) = fixture(seed, 18);
        let queries = Arc::new(queries);
        let engine = Arc::new(RouteQueryEngine::with_lanes(
            Arc::clone(&_graph),
            gangs,
        ));
        // High per-task rates with small absolute budgets: the storm is
        // violent but bounded, so the run always reaches the recovered
        // steady state.
        let plan = FaultPlan::new(seed ^ 0xc4a0)
            .with_panic_rate(60_000, panic_budget)
            .with_push_panic_rate(60_000, push_panic_budget)
            .with_stall_rate(60_000, Duration::from_micros(200), stall_budget);
        let service = Arc::new(chaos_service(gangs, seed, plan.clone()));
        // Bounded retry: a lost attempt re-runs the query on a fresh (or
        // respawned) gang.  Queries are idempotent — each runs on its own
        // lane — so retry-on-loss is sound.
        let policy = JobPolicy::default().with_retries(2, Duration::from_micros(100));

        let mut verified_ok = 0u64;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for client in 0..clients {
                let service = Arc::clone(&service);
                let engine = Arc::clone(&engine);
                let queries = Arc::clone(&queries);
                let policy = policy.clone();
                handles.push(scope.spawn(move || {
                    let mut ok = 0u64;
                    for i in (client..queries.len()).step_by(clients) {
                        let (source, target, expected) = queries[i];
                        let engine = Arc::clone(&engine);
                        let ticket = service
                            .submit_with(policy.clone(), move |pool| {
                                Ok(engine.query(source, target, pool))
                            })
                            .expect("service open while clients run");
                        // The no-hang property: wait() must always return.
                        match ticket.wait() {
                            Ok(done) => {
                                assert_eq!(
                                    done.output.distance, expected,
                                    "query {source}->{target} diverged under faults"
                                );
                                ok += 1;
                            }
                            // Typed failure on this ticket only.  The
                            // exhaustive match is the point: every failure
                            // mode is a named variant, not a panic.
                            Err(
                                JobError::Lost
                                | JobError::NoCapacity
                                | JobError::DeadlineExceeded
                                | JobError::BudgetExceeded,
                            ) => {}
                        }
                    }
                    ok
                }));
            }
            for handle in handles {
                verified_ok += handle.join().expect("no client thread may panic");
            }
        });

        let service = Arc::into_inner(service).expect("clients joined");
        // Recovery: lazy respawn only fires on claim, so a gang poisoned
        // by the final job may still be down — rebuild it, then the fleet
        // must be whole.
        service.pool().respawn_dead();
        prop_assert_eq!(
            service.pool().live_gangs(),
            gangs,
            "capacity must recover to the full gang count"
        );
        let pool_stats = service.pool_stats();
        let stats = service.shutdown();

        prop_assert_eq!(
            stats.completed + stats.failed + stats.cancelled + stats.no_capacity,
            stats.submitted,
            "every accepted job must land in exactly one outcome counter"
        );
        prop_assert_eq!(stats.completed, verified_ok);
        // One worker per gang: every injected panic kills exactly one
        // gang, and every kill must have been matched by one respawn.
        prop_assert_eq!(
            pool_stats.gangs_poisoned,
            plan.panics_injected(),
            "each injected panic must poison exactly one single-worker gang"
        );
        prop_assert_eq!(
            pool_stats.gangs_respawned,
            plan.panics_injected(),
            "each injected panic must be matched by one gang respawn"
        );
        if plan.panics_injected() == 0 {
            // Stalls delay work but may never lose it.
            prop_assert_eq!(stats.failed, 0, "no job may fail without an injected panic");
        }
    }

    /// Stall storms under tight deadlines: tickets resolve `Ok` or
    /// `Err(DeadlineExceeded)` — cancellation is cooperative, so the gang
    /// is never poisoned and the pool serves a plain job right after.
    #[test]
    fn deadlines_under_stall_storms_cancel_cleanly(
        gangs in 1usize..3,
        stall_budget in 4u64..24,
        deadline_us in 30u64..1_500,
        seed in 0u64..1_000_000,
    ) {
        let (_graph, queries) = fixture(seed, 10);
        let engine = Arc::new(RouteQueryEngine::with_lanes(
            Arc::clone(&_graph),
            gangs,
        ));
        // Stalls only: no panics, so `Lost`/`NoCapacity` are impossible
        // and every non-Ok outcome must be the deadline.
        let plan = FaultPlan::new(seed ^ 0x57a1)
            .with_stall_rate(200_000, Duration::from_micros(300), stall_budget);
        let service = chaos_service(gangs, seed, plan);
        let policy = JobPolicy::default().with_timeout(Duration::from_micros(deadline_us));

        let mut cancelled = 0u64;
        for &(source, target, expected) in &queries {
            let engine = Arc::clone(&engine);
            let ticket = service
                .submit_with(policy.clone(), move |pool| {
                    Ok(engine.query(source, target, pool))
                })
                .expect("service open");
            match ticket.wait() {
                Ok(done) => prop_assert_eq!(done.output.distance, expected),
                Err(JobError::DeadlineExceeded) => cancelled += 1,
                Err(other) => prop_assert!(
                    false,
                    "stall-only storm produced {:?}, expected only DeadlineExceeded",
                    other
                ),
            }
        }

        // Cooperative cancellation must not poison: the pool is reusable
        // immediately, with zero respawns.
        prop_assert_eq!(service.pool().live_gangs(), gangs);
        let (source, target, expected) = queries[0];
        let engine = Arc::clone(&engine);
        let after = service
            .submit(move |pool| engine.query(source, target, pool))
            .expect("service open")
            .wait()
            .expect("plain job after the storm");
        prop_assert_eq!(after.output.distance, expected);

        let pool_stats = service.pool_stats();
        let stats = service.shutdown();
        prop_assert_eq!(pool_stats.gangs_poisoned, 0);
        prop_assert_eq!(pool_stats.gangs_respawned, 0);
        prop_assert_eq!(stats.cancelled, cancelled);
        prop_assert_eq!(stats.failed, 0);
    }
}
