//! Facade crate re-exporting the whole SMQ reproduction.
//!
//! See the individual crates for details:
//! [`smq_scheduler`] (the paper's contribution), [`smq_multiqueue`],
//! [`smq_obim`], [`smq_spraylist`] (baselines), [`smq_graph`] /
//! [`smq_algos`] / [`smq_runtime`] (the evaluation substrate),
//! [`smq_pool`] (the resident worker pool and job service),
//! [`smq_rank`] (the Theorem-1 analytical model) and
//! [`smq_telemetry`] (opt-in histograms, rank-error probes, phase
//! tracing and trace export).

pub use smq_algos as algos;
pub use smq_core as core;
pub use smq_dheap as dheap;
pub use smq_graph as graph;
pub use smq_multiqueue as multiqueue;
pub use smq_obim as obim;
pub use smq_pool as pool;
pub use smq_rank as rank;
pub use smq_runtime as runtime;
pub use smq_scheduler as smq;
pub use smq_skiplist as skiplist;
pub use smq_spraylist as spraylist;
pub use smq_telemetry as telemetry;
